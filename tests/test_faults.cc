/**
 * @file
 * Fault-matrix suite for the deterministic fault-injection layer
 * (support/faults.hh) and the pipeline's resilience machinery: every
 * instrumented stage crossed with its fault class, plus the campaign
 * invariants — completion under faults, exact fault accounting, and
 * byte-identical replay at 1 and N threads.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/expdb.hh"
#include "core/pipeline.hh"
#include "core/report.hh"
#include "support/env.hh"
#include "support/faults.hh"
#include "support/metrics.hh"

namespace scamv::core {
namespace {

/** Iteration scale (see tests/test_solver_fuzz.cc and the CI
 *  nightly-stress job): campaign sizes multiply by SCAMV_FUZZ_ITERS. */
int
iterScale()
{
    return static_cast<int>(envLong("SCAMV_FUZZ_ITERS", 1, 1000)
                                .value_or(1));
}

/** Campaign configuration exercising every stage of the pipeline. */
PipelineConfig
faultBaseConfig()
{
    PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    cfg.programs = 8;
    cfg.testsPerProgram = 6 * iterScale();
    cfg.seed = 42;
    cfg.deterministicMetricsTiming = true;
    cfg.retryMax = 2;
    return cfg;
}

/** A plan firing only `site` with the given probability. */
faults::FaultPlan
planFor(faults::Site site, double rate)
{
    faults::FaultPlan plan;
    plan.rate = rate;
    plan.mask = 1u << static_cast<int>(site);
    return plan;
}

/** faults.injected must equal the sum of its per-site breakdown. */
void
expectFaultAccounting(const RunStats &stats)
{
    std::uint64_t per_site = 0;
    for (const auto &[name, value] : stats.metrics.counters)
        if (name.rfind("faults.injected.", 0) == 0)
            per_site += value;
    auto total = stats.metrics.counters.find("faults.injected");
    EXPECT_EQ(total == stats.metrics.counters.end() ? 0 : total->second,
              per_site);
    EXPECT_EQ(stats.faultsInjected,
              static_cast<std::int64_t>(per_site));
}

/**
 * Run `cfg` at 1 and 4 threads and check the resilience invariants:
 * the campaign completes, fault accounting is exact, and the merged
 * metrics JSON is byte-identical across thread counts.
 * @return the single-threaded stats for site-specific assertions.
 */
RunStats
runMatrixCase(PipelineConfig cfg)
{
    ExperimentDb db_serial, db_parallel;
    PipelineConfig serial = cfg;
    serial.threads = 1;
    serial.database = &db_serial;
    PipelineConfig parallel = cfg;
    parallel.threads = 4;
    parallel.database = &db_parallel;

    const RunStats s = Pipeline(serial).run();
    const RunStats p = Pipeline(parallel).run();

    // Graceful completion: every program is accounted for even when
    // some were quarantined or died.
    EXPECT_EQ(s.programs, cfg.programs);
    EXPECT_EQ(p.programs, cfg.programs);
    expectFaultAccounting(s);
    expectFaultAccounting(p);
    EXPECT_EQ(metrics::toJson(s.metrics), metrics::toJson(p.metrics));
    EXPECT_EQ(s.quarantinedPrograms, p.quarantinedPrograms);
    EXPECT_EQ(s.failedPrograms, p.failedPrograms);
    EXPECT_EQ(db_serial.size(), db_parallel.size());
    // Every experiment either reached the log or was counted dropped.
    EXPECT_EQ(static_cast<std::int64_t>(db_serial.size()) +
                  s.dbWriteDrops,
              s.experiments);
    return s;
}

// ---- Injector unit behaviour --------------------------------------

TEST(FaultInjector, DecisionsAreDeterministic)
{
    const faults::FaultPlan plan = planFor(faults::Site::SmtUnknown,
                                           0.5);
    faults::Injector a(plan, 42, 3);
    faults::Injector b(plan, 42, 3);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.fire(faults::Site::SmtUnknown),
                  b.fire(faults::Site::SmtUnknown));
    EXPECT_EQ(a.injectedCount(), b.injectedCount());
    EXPECT_GT(a.injectedCount(), 0u);
    EXPECT_LT(a.injectedCount(), 200u);
}

TEST(FaultInjector, DecisionsDependOnCampaignCoordinates)
{
    const faults::FaultPlan plan = planFor(faults::Site::SatTimeout,
                                           0.5);
    auto decisions = [&](std::uint64_t seed, int prog) {
        faults::Injector inj(plan, seed, prog);
        std::uint64_t bits = 0;
        for (int i = 0; i < 64; ++i)
            bits = bits << 1 | inj.fire(faults::Site::SatTimeout);
        return bits;
    };
    EXPECT_NE(decisions(42, 0), decisions(42, 1));
    EXPECT_NE(decisions(42, 0), decisions(43, 0));
    EXPECT_EQ(decisions(42, 0), decisions(42, 0));
}

TEST(FaultInjector, RateOneAlwaysFiresAndRateZeroNever)
{
    faults::Injector always(planFor(faults::Site::HwFlake, 1.0), 1, 0);
    faults::Injector never(planFor(faults::Site::HwFlake, 0.0), 1, 0);
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(always.fire(faults::Site::HwFlake));
        EXPECT_FALSE(never.fire(faults::Site::HwFlake));
    }
}

TEST(FaultInjector, MaskGatesSites)
{
    faults::Injector inj(planFor(faults::Site::DbWrite, 1.0), 1, 0);
    EXPECT_FALSE(inj.fire(faults::Site::SmtUnknown));
    EXPECT_TRUE(inj.fire(faults::Site::DbWrite));
}

TEST(FaultInjector, FiresAreCountedInCurrentRegistry)
{
    metrics::Registry reg(metrics::ClockMode::Deterministic);
    metrics::ScopedRegistry scope(reg);
    faults::FaultPlan plan;
    plan.rate = 1.0;
    plan.mask = faults::FaultPlan::maskAll();
    faults::Injector inj(plan, 7, 0);
    faults::ScopedInjector inj_scope(inj);
    EXPECT_TRUE(faults::maybeInject(faults::Site::SatTimeout));
    EXPECT_TRUE(faults::maybeInject(faults::Site::DbWrite));
    EXPECT_TRUE(faults::maybeInject(faults::Site::DbWrite));
    EXPECT_EQ(faults::injectedCount(), 3u);
    const metrics::Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("faults.injected"), 3u);
    EXPECT_EQ(snap.counters.at("faults.injected.sat_timeout"), 1u);
    EXPECT_EQ(snap.counters.at("faults.injected.db_write"), 2u);
}

TEST(FaultInjector, NoInjectorMeansNoInjection)
{
    EXPECT_EQ(faults::current(), nullptr);
    EXPECT_FALSE(faults::maybeInject(faults::Site::SmtUnknown));
    EXPECT_EQ(faults::injectedCount(), 0u);
}

TEST(FaultInjector, SiteNamesRoundTrip)
{
    for (int i = 0; i < faults::kSiteCount; ++i) {
        const auto site = static_cast<faults::Site>(i);
        const auto back = faults::siteFromName(faults::siteName(site));
        ASSERT_TRUE(back.has_value()) << faults::siteName(site);
        EXPECT_EQ(static_cast<int>(*back), i);
    }
    EXPECT_FALSE(faults::siteFromName("bogus").has_value());
}

// ---- Plan-from-environment parsing --------------------------------

TEST(FaultPlan, FromEnvDisabledByDefault)
{
    unsetenv("SCAMV_FAULT_RATE");
    unsetenv("SCAMV_FAULT_PLAN");
    EXPECT_FALSE(faults::FaultPlan::fromEnv().enabled());
}

TEST(FaultPlan, FromEnvSelectsSites)
{
    setenv("SCAMV_FAULT_RATE", "0.25", 1);
    setenv("SCAMV_FAULT_PLAN", "smt_unknown,db_write", 1);
    const faults::FaultPlan plan = faults::FaultPlan::fromEnv();
    EXPECT_TRUE(plan.enabled());
    EXPECT_DOUBLE_EQ(plan.rate, 0.25);
    EXPECT_TRUE(plan.covers(faults::Site::SmtUnknown));
    EXPECT_TRUE(plan.covers(faults::Site::DbWrite));
    EXPECT_FALSE(plan.covers(faults::Site::SatTimeout));

    setenv("SCAMV_FAULT_PLAN", "all", 1);
    EXPECT_EQ(faults::FaultPlan::fromEnv().mask,
              faults::FaultPlan::maskAll());

    // Unknown names are skipped; a plan with no valid site disables.
    setenv("SCAMV_FAULT_PLAN", "bogus", 1);
    EXPECT_FALSE(faults::FaultPlan::fromEnv().enabled());

    // Out-of-range rates are rejected by the validated env layer.
    setenv("SCAMV_FAULT_PLAN", "all", 1);
    setenv("SCAMV_FAULT_RATE", "1.5", 1);
    EXPECT_FALSE(faults::FaultPlan::fromEnv().enabled());

    unsetenv("SCAMV_FAULT_RATE");
    unsetenv("SCAMV_FAULT_PLAN");
}

// ---- Stage x fault-class matrix -----------------------------------

TEST(FaultMatrix, SatTimeoutCampaignCompletes)
{
    PipelineConfig cfg = faultBaseConfig();
    cfg.faultPlan = planFor(faults::Site::SatTimeout, 0.3);
    const RunStats s = runMatrixCase(cfg);
    EXPECT_GT(s.faultsInjected, 0);
    EXPECT_GT(s.metrics.counters.count("faults.injected.sat_timeout"),
              0u);
}

TEST(FaultMatrix, SmtUnknownCampaignCompletes)
{
    PipelineConfig cfg = faultBaseConfig();
    cfg.faultPlan = planFor(faults::Site::SmtUnknown, 0.3);
    const RunStats s = runMatrixCase(cfg);
    EXPECT_GT(s.faultsInjected, 0);
    // Injected Unknowns are retried with escalating budgets.
    EXPECT_GT(s.retryAttempts, 0);
    EXPECT_GT(
        s.metrics.counters.count("faults.injected.smt_unknown"), 0u);
}

TEST(FaultMatrix, SamplerExhaustCampaignCompletes)
{
    PipelineConfig cfg = faultBaseConfig();
    cfg.strategy = SolveStrategy::Sampler;
    cfg.faultPlan = planFor(faults::Site::SamplerExhaust, 0.5);
    const RunStats s = runMatrixCase(cfg);
    EXPECT_GT(s.faultsInjected, 0);
    EXPECT_GT(s.metrics.counters.count(
                  "faults.injected.sampler_exhaust"),
              0u);
}

TEST(FaultMatrix, HwProbeJitterCampaignCompletes)
{
    PipelineConfig cfg = faultBaseConfig();
    cfg.platform.channel = harness::Channel::PrimeProbe;
    cfg.platform.visibleLoSet = 61;
    cfg.platform.visibleHiSet = 127;
    cfg.faultPlan = planFor(faults::Site::HwProbeJitter, 0.05);
    const RunStats s = runMatrixCase(cfg);
    EXPECT_GT(s.faultsInjected, 0);
    EXPECT_GT(
        s.metrics.counters.count("faults.injected.hw_probe_jitter"),
        0u);
}

TEST(FaultMatrix, HwFlakeCampaignCompletes)
{
    PipelineConfig cfg = faultBaseConfig();
    cfg.faultPlan = planFor(faults::Site::HwFlake, 0.2);
    const RunStats s = runMatrixCase(cfg);
    EXPECT_GT(s.faultsInjected, 0);
    // Flaked experiments are accepted in degraded form.
    EXPECT_GT(s.degraded, 0);
    EXPECT_GT(s.metrics.counters.count("faults.injected.hw_flake"),
              0u);
}

TEST(FaultMatrix, DbWriteFailuresAreRetriedOrDropped)
{
    PipelineConfig cfg = faultBaseConfig();
    cfg.faultPlan = planFor(faults::Site::DbWrite, 0.5);
    cfg.retryMax = 0; // no retries: every injected failure drops
    const RunStats s = runMatrixCase(cfg);
    EXPECT_GT(s.faultsInjected, 0);
    EXPECT_GT(s.dbWriteDrops, 0);

    // With retries most rejected writes eventually land.
    PipelineConfig retried = cfg;
    retried.retryMax = 4;
    const RunStats r = runMatrixCase(retried);
    EXPECT_LT(r.dbWriteDrops, s.dbWriteDrops);
    EXPECT_GT(r.retryAttempts, 0);
}

TEST(FaultMatrix, TaskAbortIsContainedByTheGuard)
{
    PipelineConfig cfg = faultBaseConfig();
    cfg.faultPlan = planFor(faults::Site::TaskAbort, 0.5);
    const RunStats s = runMatrixCase(cfg);
    // Some tasks died, but every program is accounted for and the
    // dead ones are listed by name instead of killing the campaign.
    EXPECT_GT(s.programFailures, 0);
    EXPECT_LT(s.programFailures, cfg.programs);
    EXPECT_EQ(s.failedPrograms.size(),
              static_cast<std::size_t>(s.programFailures));
    EXPECT_EQ(s.programs, cfg.programs);
    EXPECT_GT(s.experiments, 0); // surviving programs produced data
}

TEST(FaultMatrix, HighRateQuarantinesPrograms)
{
    PipelineConfig cfg = faultBaseConfig();
    // Solver stages fail almost always: after quarantineAfter
    // consecutive injected failures the program must be abandoned
    // (graceful degradation), not ground through all its tests.
    faults::FaultPlan plan;
    plan.rate = 0.95;
    plan.mask = (1u << static_cast<int>(faults::Site::SatTimeout)) |
                (1u << static_cast<int>(faults::Site::SmtUnknown));
    cfg.faultPlan = plan;
    cfg.retryMax = 0;
    cfg.quarantineAfter = 2;
    const RunStats s = runMatrixCase(cfg);
    EXPECT_GT(s.quarantined, 0);
    EXPECT_EQ(s.quarantinedPrograms.size(),
              static_cast<std::size_t>(s.quarantined));
    EXPECT_EQ(s.programs, cfg.programs);
}

// ---- Campaign-level invariants ------------------------------------

TEST(FaultCampaign, EnvConfiguredCampaignIsThreadCountIdentical)
{
    // The ISSUE acceptance scenario: SCAMV_FAULT_RATE=0.2 over all
    // sites, 8 programs, 1 vs 4 threads, identical merged stats.
    setenv("SCAMV_FAULT_RATE", "0.2", 1);
    unsetenv("SCAMV_FAULT_PLAN");
    PipelineConfig cfg = faultBaseConfig();
    const RunStats s = runMatrixCase(cfg);
    EXPECT_GT(s.faultsInjected, 0);
    unsetenv("SCAMV_FAULT_RATE");
}

TEST(FaultCampaign, SameSeedReplaysByteIdentically)
{
    PipelineConfig cfg = faultBaseConfig();
    cfg.faultPlan.rate = 0.2;
    cfg.faultPlan.mask = faults::FaultPlan::maskAll();
    cfg.threads = 1;
    const RunStats a = Pipeline(cfg).run();
    const RunStats b = Pipeline(cfg).run();
    EXPECT_EQ(metrics::toJson(a.metrics), metrics::toJson(b.metrics));
    EXPECT_EQ(a.quarantinedPrograms, b.quarantinedPrograms);
    EXPECT_EQ(a.failedPrograms, b.failedPrograms);
}

TEST(FaultCampaign, DisabledPlanInjectsNothing)
{
    unsetenv("SCAMV_FAULT_RATE");
    PipelineConfig cfg = faultBaseConfig();
    cfg.threads = 1;
    const RunStats s = Pipeline(cfg).run();
    EXPECT_EQ(s.faultsInjected, 0);
    EXPECT_EQ(s.retryAttempts, 0);
    EXPECT_EQ(s.quarantined, 0);
    EXPECT_EQ(s.programFailures, 0);
    EXPECT_EQ(s.metrics.counters.count("faults.injected"), 0u);
    EXPECT_EQ(s.metrics.counters.count("retry.attempts"), 0u);
}

TEST(FaultCampaign, ResilienceSummaryListsQuarantinedPrograms)
{
    RunStats s;
    s.faultsInjected = 12;
    s.retryAttempts = 4;
    s.degraded = 3;
    s.quarantinedPrograms = {"prog-a", "prog-b"};
    s.failedPrograms = {"prog-c"};
    const std::string out = renderResilienceSummary(s);
    EXPECT_NE(out.find("prog-a"), std::string::npos);
    EXPECT_NE(out.find("prog-b"), std::string::npos);
    EXPECT_NE(out.find("prog-c"), std::string::npos);
    EXPECT_NE(out.find("12"), std::string::npos);

    RunStats clean;
    EXPECT_EQ(renderResilienceSummary(clean).find("quarantined"),
              std::string::npos);
}

TEST(FaultCampaign, CampaignTableShowsResilienceRowsOnlyUnderFaults)
{
    RunStats clean;
    const std::string without =
        renderCampaignTable({{"Mct", "A", "No", "Mpc"}}, {clean})
            .render();
    EXPECT_EQ(without.find("Faults injected"), std::string::npos);

    RunStats faulty;
    faulty.faultsInjected = 5;
    faulty.quarantined = 1;
    const std::string with =
        renderCampaignTable({{"Mct", "A", "No", "Mpc"}}, {faulty})
            .render();
    EXPECT_NE(with.find("Faults injected"), std::string::npos);
    EXPECT_NE(with.find("Quarantined"), std::string::npos);
}

} // namespace
} // namespace scamv::core
