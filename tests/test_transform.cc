/** @file Unit tests for speculative instrumentation transforms. */

#include <gtest/gtest.h>

#include "bir/asm.hh"
#include "bir/transform.hh"

namespace scamv::bir {
namespace {

Program
prog(const char *src)
{
    auto r = assemble(src);
    EXPECT_TRUE(r.ok()) << r.error;
    return r.program;
}

int
transientCount(const Program &p)
{
    int n = 0;
    for (const Instr &i : p.instrs())
        n += i.transient;
    return n;
}

TEST(Instrument, BranchWithBodyGetsShadowOnBothSides)
{
    // if-style: branch to end skips the body.
    Program p = prog("b.ne x1, x4, end\n"
                     "ldr x6, [x5, x2]\n"
                     "end: ret\n");
    Program out = instrumentSpeculation(p);
    EXPECT_EQ(out.validate(), "");
    // The body load is shadow-copied to the taken (end) side; the
    // empty taken side adds nothing to the fall-through.
    EXPECT_EQ(transientCount(out), 1);
    // Architectural instructions preserved, plus one jump-over that
    // shields the at-target shadow block from fall-through flow.
    int arch = 0;
    int jumps = 0;
    for (const Instr &i : out.instrs()) {
        arch += !i.transient;
        jumps += !i.transient && i.kind == InstrKind::Jump;
    }
    EXPECT_EQ(arch, static_cast<int>(p.size()) + 1);
    EXPECT_EQ(jumps, 1);
}

TEST(Instrument, ShadowPlacedAtBranchTarget)
{
    Program p = prog("b.ne x1, x4, end\n"
                     "ldr x6, [x5, x2]\n"
                     "end: ret\n");
    Program out = instrumentSpeculation(p);
    // Find the branch; its target must point at a transient load.
    for (const Instr &i : out.instrs()) {
        if (i.kind == InstrKind::Branch) {
            ASSERT_LT(i.target, static_cast<int>(out.size()));
            EXPECT_TRUE(out[i.target].transient);
            EXPECT_EQ(out[i.target].kind, InstrKind::Load);
        }
    }
}

TEST(Instrument, DiamondGetsBothShadows)
{
    Program p = prog("b.eq x0, x1, then\n"
                     "ldr x2, [x4]\n"
                     "b join\n"
                     "then: ldr x3, [x5]\n"
                     "join: ret\n");
    Program out = instrumentSpeculation(p);
    EXPECT_EQ(out.validate(), "");
    // Each side speculates the other's single load: 2 shadow instrs.
    EXPECT_EQ(transientCount(out), 2);
}

TEST(Instrument, ShadowBoundedByOption)
{
    Program p = prog("b.ne x1, x4, end\n"
                     "ldr x2, [x0]\n"
                     "ldr x3, [x0]\n"
                     "ldr x5, [x0]\n"
                     "end: ret\n");
    SpecInstrumentOptions opts;
    opts.maxShadowInstrs = 2;
    Program out = instrumentSpeculation(p, opts);
    EXPECT_EQ(transientCount(out), 2);
}

TEST(Instrument, StoresExcludedWhenConfigured)
{
    Program p = prog("b.ne x1, x4, end\n"
                     "str x2, [x0]\n"
                     "ldr x3, [x0]\n"
                     "end: ret\n");
    SpecInstrumentOptions opts;
    opts.includeStores = false;
    Program out = instrumentSpeculation(p, opts);
    for (const Instr &i : out.instrs())
        if (i.transient) {
            EXPECT_NE(i.kind, InstrKind::Store);
        }
    EXPECT_EQ(transientCount(out), 1);
}

TEST(Instrument, ShadowCollectionStopsAtControlFlow)
{
    Program p = prog("b.eq x0, x1, other\n"
                     "ldr x2, [x4]\n"
                     "b done\n"
                     "ldr x3, [x4]\n" // unreachable from fall-through
                     "other: ret\n"
                     "done: ret\n");
    Program out = instrumentSpeculation(p);
    // Shadow of the fall-through side stops at `b done`, so only one
    // load is copied to `other`; `other: ret` contributes nothing.
    EXPECT_EQ(transientCount(out), 1);
}

TEST(Instrument, NoBranchNoChangeInBehaviour)
{
    Program p = prog("ldr x1, [x0]\nret\n");
    Program out = instrumentSpeculation(p);
    EXPECT_EQ(transientCount(out), 0);
    EXPECT_EQ(out.size(), p.size());
}

TEST(Instrument, TransientNeverControlFlow)
{
    Program p = prog("b.eq x0, x1, t\n"
                     "ldr x2, [x4]\n"
                     "b.ne x2, x3, t\n"
                     "ldr x5, [x4]\n"
                     "t: ret\n");
    Program out = instrumentSpeculation(p);
    for (const Instr &i : out.instrs()) {
        if (i.transient) {
            EXPECT_NE(i.kind, InstrKind::Branch);
            EXPECT_NE(i.kind, InstrKind::Jump);
            EXPECT_NE(i.kind, InstrKind::Halt);
        }
    }
}

TEST(RewriteJumps, JumpBecomesTautologicalBranch)
{
    Program p = prog("b end\nldr x1, [x0]\nend: ret\n");
    Program out = rewriteJumpsToCondBranches(p);
    ASSERT_EQ(out.size(), p.size());
    EXPECT_EQ(out[0].kind, InstrKind::Branch);
    EXPECT_EQ(out[0].cmpOp, CmpOp::Eq);
    EXPECT_EQ(out[0].rn, out[0].rm); // x0 == x0: always taken
    EXPECT_EQ(out[0].target, 2);
}

TEST(RewriteJumps, ThenInstrumentExposesStraightLineCode)
{
    Program p = prog("b end\nldr x1, [x0, x2]\nend: ret\n");
    Program out = instrumentSpeculation(rewriteJumpsToCondBranches(p));
    EXPECT_EQ(out.validate(), "");
    // The dead straight-line load appears as a shadow at the target.
    EXPECT_GE(transientCount(out), 1);
    bool shadow_load = false;
    for (const Instr &i : out.instrs())
        shadow_load |= i.transient && i.kind == InstrKind::Load;
    EXPECT_TRUE(shadow_load);
}

} // namespace
} // namespace scamv::bir
