/** @file Unit tests for concrete expression evaluation. */

#include <gtest/gtest.h>

#include "expr/eval.hh"

namespace scamv::expr {
namespace {

class EvalTest : public ::testing::Test
{
  protected:
    ExprContext ctx;
    Assignment a;
};

TEST_F(EvalTest, VariablesAndConstants)
{
    a.bvVars["x"] = 7;
    EXPECT_EQ(evalBv(ctx.bvVar("x"), a), 7u);
    EXPECT_EQ(evalBv(ctx.bv(11), a), 11u);
    EXPECT_EQ(evalBv(ctx.bvVar("unbound"), a), 0u);
    EXPECT_TRUE(evalBool(ctx.tru(), a));
    EXPECT_FALSE(evalBool(ctx.fls(), a));
}

TEST_F(EvalTest, Arithmetic)
{
    a.bvVars["x"] = 10;
    a.bvVars["y"] = 3;
    Expr x = ctx.bvVar("x"), y = ctx.bvVar("y");
    EXPECT_EQ(evalBv(ctx.add(x, y), a), 13u);
    EXPECT_EQ(evalBv(ctx.sub(x, y), a), 7u);
    EXPECT_EQ(evalBv(ctx.mul(x, y), a), 30u);
    EXPECT_EQ(evalBv(ctx.neg(y), a), static_cast<std::uint64_t>(-3));
}

TEST_F(EvalTest, WrapAround)
{
    a.bvVars["x"] = UINT64_MAX;
    Expr x = ctx.bvVar("x");
    EXPECT_EQ(evalBv(ctx.add(x, ctx.bv(1)), a), 0u);
    EXPECT_EQ(evalBv(ctx.mul(x, ctx.bv(2)), a), UINT64_MAX - 1);
}

TEST_F(EvalTest, BitwiseAndShifts)
{
    a.bvVars["x"] = 0xFF00;
    Expr x = ctx.bvVar("x");
    EXPECT_EQ(evalBv(ctx.bvAnd(x, ctx.bv(0x0F00)), a), 0x0F00u);
    EXPECT_EQ(evalBv(ctx.bvOr(x, ctx.bv(0xFF)), a), 0xFFFFu);
    EXPECT_EQ(evalBv(ctx.bvXor(x, x), a), 0u);
    EXPECT_EQ(evalBv(ctx.bvNot(ctx.bv(0)), a), UINT64_MAX);
    EXPECT_EQ(evalBv(ctx.shl(ctx.bv(1), ctx.bv(12)), a), 4096u);
    EXPECT_EQ(evalBv(ctx.lshr(x, ctx.bv(8)), a), 0xFFu);
    EXPECT_EQ(evalBv(ctx.ashr(ctx.bv(0x8000000000000000ULL),
                              ctx.bv(4)), a),
              0xF800000000000000ULL);
}

TEST_F(EvalTest, ShiftAmountsWrapMod64)
{
    EXPECT_EQ(evalBv(ctx.shl(ctx.bvVar("one"), ctx.bv(64)), a),
              a.bv("one")); // 64 & 63 == 0
    a.bvVars["one"] = 1;
    EXPECT_EQ(evalBv(ctx.shl(ctx.bvVar("one"), ctx.bv(65)), a), 2u);
}

TEST_F(EvalTest, Comparisons)
{
    a.bvVars["x"] = 5;
    a.bvVars["y"] = static_cast<std::uint64_t>(-5);
    Expr x = ctx.bvVar("x"), y = ctx.bvVar("y");
    EXPECT_TRUE(evalBool(ctx.ult(x, y), a));  // unsigned: 5 < huge
    EXPECT_FALSE(evalBool(ctx.slt(x, y), a)); // signed: 5 > -5
    EXPECT_TRUE(evalBool(ctx.sle(y, x), a));
    EXPECT_TRUE(evalBool(ctx.eq(x, ctx.bv(5)), a));
    EXPECT_TRUE(evalBool(ctx.neq(x, y), a));
}

TEST_F(EvalTest, BooleanConnectives)
{
    a.boolVars["p"] = true;
    a.boolVars["q"] = false;
    Expr p = ctx.boolVar("p"), q = ctx.boolVar("q");
    EXPECT_FALSE(evalBool(ctx.land(p, q), a));
    EXPECT_TRUE(evalBool(ctx.lor(p, q), a));
    EXPECT_TRUE(evalBool(ctx.lnot(q), a));
    EXPECT_FALSE(evalBool(ctx.implies(p, q), a));
    EXPECT_TRUE(evalBool(ctx.implies(q, p), a));
}

TEST_F(EvalTest, IteSelectsBranch)
{
    a.boolVars["p"] = true;
    Expr e = ctx.ite(ctx.boolVar("p"), ctx.bv(1), ctx.bv(2));
    EXPECT_EQ(evalBv(e, a), 1u);
    a.boolVars["p"] = false;
    EXPECT_EQ(evalBv(e, a), 2u);
}

TEST_F(EvalTest, MemoryReadsDefaultAndExplicit)
{
    a.mems["m"].storeWord(0x100, 77);
    Expr m = ctx.memVar("m");
    EXPECT_EQ(evalBv(ctx.read(m, ctx.bv(0x100)), a), 77u);
    EXPECT_EQ(evalBv(ctx.read(m, ctx.bv(0x200)), a), 0u); // default
}

TEST_F(EvalTest, ReadThroughStoreChain)
{
    Expr m = ctx.memVar("m");
    Expr addr_a = ctx.bvVar("a");
    Expr addr_b = ctx.bvVar("b");
    a.bvVars["a"] = 0x10;
    a.bvVars["b"] = 0x20;
    a.mems["m"].storeWord(0x20, 5);
    Expr chain = ctx.store(m, addr_a, ctx.bv(42));
    EXPECT_EQ(evalBv(ctx.read(chain, addr_a), a), 42u);
    EXPECT_EQ(evalBv(ctx.read(chain, addr_b), a), 5u);
}

TEST_F(EvalTest, StoreShadowsWhenAddressesCollideDynamically)
{
    Expr m = ctx.memVar("m");
    Expr addr_a = ctx.bvVar("a");
    Expr addr_b = ctx.bvVar("b");
    a.bvVars["a"] = 0x30;
    a.bvVars["b"] = 0x30; // dynamic alias, not syntactic
    Expr chain = ctx.store(m, addr_a, ctx.bv(9));
    EXPECT_EQ(evalBv(ctx.read(chain, addr_b), a), 9u);
}

TEST_F(EvalTest, ConcreteMemoryWordGranularity)
{
    ConcreteMemory mem;
    mem.storeWord(0x100, 1);
    EXPECT_TRUE(mem.contains(0x100));
    EXPECT_FALSE(mem.contains(0x108));
    EXPECT_EQ(mem.load(0x100), 1u);
    mem.defaultValue = 99;
    EXPECT_EQ(mem.load(0x108), 99u);
}

TEST_F(EvalTest, NestedReadAddress)
{
    // mem[mem[a]]: pointer chasing as in the stride template.
    Expr m = ctx.memVar("m");
    a.bvVars["a"] = 0x40;
    a.mems["m"].storeWord(0x40, 0x80);
    a.mems["m"].storeWord(0x80, 1234);
    Expr inner = ctx.read(m, ctx.bvVar("a"));
    EXPECT_EQ(evalBv(ctx.read(m, inner), a), 1234u);
}

} // namespace
} // namespace scamv::expr
