/** @file Unit tests for the QuickCheck-style generator combinators,
 * including a full custom program template built from them. */

#include <gtest/gtest.h>

#include <set>

#include "bir/bir.hh"
#include "gen/combinators.hh"

namespace scamv::gen {
namespace {

TEST(Combinators, PureAlwaysSame)
{
    Rng rng(1);
    auto g = pure(42);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(g(rng), 42);
}

TEST(Combinators, ChooseIntInRange)
{
    Rng rng(2);
    auto g = chooseInt(10, 15);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 300; ++i) {
        const std::uint64_t v = g(rng);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 15u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 6u);
}

TEST(Combinators, ElementsPicksFromList)
{
    Rng rng(3);
    auto g = elements<int>({2, 4, 8});
    for (int i = 0; i < 50; ++i) {
        const int v = g(rng);
        EXPECT_TRUE(v == 2 || v == 4 || v == 8);
    }
}

TEST(Combinators, MapTransforms)
{
    Rng rng(4);
    auto g = chooseInt(1, 5).map([](std::uint64_t v) { return v * 64; });
    for (int i = 0; i < 50; ++i) {
        const auto v = g(rng);
        EXPECT_EQ(v % 64, 0u);
        EXPECT_GE(v, 64u);
        EXPECT_LE(v, 320u);
    }
}

TEST(Combinators, BindDependsOnValue)
{
    Rng rng(5);
    // Draw a length, then a vector of exactly that length.
    auto g = chooseInt(1, 4).bind([](std::uint64_t n) {
        return vectorOf(static_cast<int>(n), chooseInt(0, 9));
    });
    for (int i = 0; i < 50; ++i) {
        const auto v = g(rng);
        EXPECT_GE(v.size(), 1u);
        EXPECT_LE(v.size(), 4u);
    }
}

TEST(Combinators, SuchThatFilters)
{
    Rng rng(6);
    auto even = chooseInt(0, 100).suchThat(
        [](std::uint64_t v) { return v % 2 == 0; });
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(even(rng) % 2, 0u);
}

TEST(Combinators, OneOfUsesAllAlternatives)
{
    Rng rng(7);
    auto g = oneOf<std::uint64_t>({pure<std::uint64_t>(1),
                                   pure<std::uint64_t>(2),
                                   pure<std::uint64_t>(3)});
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(g(rng));
    EXPECT_EQ(seen.size(), 3u);
}

TEST(Combinators, FrequencyRespectsWeights)
{
    Rng rng(8);
    auto g = frequency<std::uint64_t>(
        {{9, pure<std::uint64_t>(0)}, {1, pure<std::uint64_t>(1)}});
    int ones = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        ones += static_cast<int>(g(rng));
    EXPECT_NEAR(ones / static_cast<double>(n), 0.1, 0.03);
}

TEST(Combinators, FrequencyZeroWeightNeverPicked)
{
    Rng rng(9);
    auto g = frequency<std::uint64_t>(
        {{0, pure<std::uint64_t>(7)}, {5, pure<std::uint64_t>(1)}});
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(g(rng), 1u);
}

TEST(Combinators, VectorOfRangeLengths)
{
    Rng rng(10);
    auto g = vectorOfRange(3, 5, chooseInt(0, 1));
    std::set<std::size_t> lengths;
    for (int i = 0; i < 100; ++i)
        lengths.insert(g(rng).size());
    EXPECT_EQ(lengths, (std::set<std::size_t>{3, 4, 5}));
}

TEST(Combinators, PairOfCombines)
{
    Rng rng(11);
    auto g = pairOf(chooseInt(0, 9), elements<char>({'a', 'b'}));
    for (int i = 0; i < 50; ++i) {
        auto [n, c] = g(rng);
        EXPECT_LE(n, 9u);
        EXPECT_TRUE(c == 'a' || c == 'b');
    }
}

TEST(Combinators, DeterministicFromSeed)
{
    auto g = vectorOf(8, chooseInt(0, 1000));
    Rng a(12), b(12);
    EXPECT_EQ(g(a), g(b));
}

/**
 * A complete custom template built from combinators: a stride program
 * with a composable register allocator — the extension workflow the
 * paper describes for "different attack scenarios".
 */
TEST(Combinators, CustomProgramTemplate)
{
    using bir::Instr;
    auto reg = chooseInt(0, 11).map(
        [](std::uint64_t r) { return static_cast<bir::Reg>(r); });
    auto distance = elements<std::uint64_t>({64, 128, 192});

    auto program_gen =
        pairOf(reg, distance).bind([reg](std::pair<bir::Reg,
                                                   std::uint64_t> bd) {
            auto [base, dist] = bd;
            auto dest = reg.suchThat(
                [base](bir::Reg r) { return r != base; });
            return vectorOfRange(3, 5, dest).map(
                [base, dist](std::vector<bir::Reg> dests) {
                    bir::Program p("custom-stride");
                    for (std::size_t k = 0; k < dests.size(); ++k)
                        p.push(Instr::loadImm(dests[k], base,
                                              k * dist));
                    p.push(Instr::halt());
                    return p;
                });
        });

    Rng rng(13);
    for (int i = 0; i < 30; ++i) {
        bir::Program p = program_gen(rng);
        EXPECT_EQ(p.validate(), "");
        EXPECT_GE(p.memAccessCount(), 3);
        EXPECT_LE(p.memAccessCount(), 5);
    }
}

} // namespace
} // namespace scamv::gen
