/** @file Tests for the coverage ledger and adaptive scheduler. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/expdb.hh"
#include "core/pipeline.hh"
#include "cover/ledger.hh"
#include "cover/scheduler.hh"
#include "support/faults.hh"
#include "support/metrics.hh"
#include "support/qcache/qcache.hh"

namespace scamv::cover {
namespace {

std::string
tmpPath(const char *tag)
{
    return ::testing::TempDir() + std::string("scamv_cover_") + tag +
           ".txt";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

ProgramDelta
strideDelta(int cls, int hits)
{
    ProgramDelta d;
    d.templ = "Stride";
    d.model = "Mpart";
    d.universe = 128;
    for (int k = 0; k < hits; ++k) {
        d.countDraw(cls);
        d.countHit(cls);
    }
    d.chargeSolver(cls, 0.25);
    d.pathPairs["p0|p0"] += hits;
    d.verdicts.experiments += hits;
    return d;
}

// ---------------------------------------------------------------------
// Ledger

TEST(Cover, LedgerMergeFoldsDeltas)
{
    CoverageLedger ledger;
    EXPECT_TRUE(ledger.merge(strideDelta(3, 2)));
    EXPECT_TRUE(ledger.merge(strideDelta(3, 1)));
    EXPECT_TRUE(ledger.merge(strideDelta(7, 1)));

    const Snapshot snap = ledger.snapshot();
    ASSERT_EQ(snap.templates.count("Stride"), 1u);
    const TemplateCoverage &tc = snap.templates.at("Stride");
    EXPECT_EQ(tc.universe, 128u);
    EXPECT_EQ(tc.classes.at(3).hits, 3);
    EXPECT_EQ(tc.classes.at(3).draws, 3);
    EXPECT_DOUBLE_EQ(tc.classes.at(3).solverSeconds, 0.5);
    EXPECT_EQ(tc.classes.at(7).hits, 1);
    EXPECT_EQ(tc.coveredClasses(), 2);
    EXPECT_EQ(tc.pathPairs.at("p0|p0"), 4);
    EXPECT_EQ(tc.models.at("Mpart").experiments, 4);
}

TEST(Cover, LedgerIgnoresEmptyDeltaAndClears)
{
    CoverageLedger ledger;
    EXPECT_TRUE(ledger.merge(ProgramDelta{}));
    EXPECT_TRUE(ledger.snapshot().templates.empty());

    EXPECT_TRUE(ledger.merge(strideDelta(0, 1)));
    EXPECT_FALSE(ledger.snapshot().templates.empty());
    ledger.clear();
    EXPECT_TRUE(ledger.snapshot().templates.empty());
}

TEST(Cover, DeltaCountsDistinctClasses)
{
    ProgramDelta d;
    d.countDraw(5);
    d.countDraw(5);
    d.countHit(5);
    d.countDraw(-1); // no class drawn: must not be accounted
    d.countHit(-1);
    EXPECT_EQ(d.classes.size(), 1u);
    EXPECT_EQ(d.classes.at(5).draws, 2);
    EXPECT_EQ(d.classes.at(5).hits, 1);
}

TEST(Cover, ToJsonIsStableAndSorted)
{
    CoverageLedger a, b;
    // Merge in different orders: the rendered JSON must not care.
    EXPECT_TRUE(a.merge(strideDelta(7, 1)));
    EXPECT_TRUE(a.merge(strideDelta(3, 2)));
    EXPECT_TRUE(b.merge(strideDelta(3, 2)));
    EXPECT_TRUE(b.merge(strideDelta(7, 1)));

    const std::string ja = toJson(a.snapshot());
    EXPECT_EQ(ja, toJson(b.snapshot()));
    EXPECT_NE(ja.find("\"schema\": \"scamv-coverage-v1\""),
              std::string::npos);
    EXPECT_NE(ja.find("\"Stride\""), std::string::npos);
    EXPECT_NE(ja.find("\"universe\": 128"), std::string::npos);
    EXPECT_NE(ja.find("\"covered\": 2"), std::string::npos);
    // Class keys render sorted: class 3 before class 7.
    EXPECT_LT(ja.find("\"3\""), ja.find("\"7\""));
}

TEST(Cover, WriteJsonCreatesFile)
{
    CoverageLedger ledger;
    EXPECT_TRUE(ledger.merge(strideDelta(1, 1)));
    const std::string path = tmpPath("write_json");
    EXPECT_TRUE(writeJson(ledger.snapshot(), path));
    EXPECT_EQ(readFile(path), toJson(ledger.snapshot()));
    std::remove(path.c_str());
}

TEST(Cover, LedgerMergeFaultDropsDelta)
{
    faults::FaultPlan plan;
    plan.rate = 1.0;
    plan.mask = 1u << static_cast<int>(faults::Site::CoverLedgerMerge);
    faults::Injector injector(plan, 42, 0);
    faults::ScopedInjector scope(injector);

    CoverageLedger ledger;
    EXPECT_FALSE(ledger.merge(strideDelta(3, 1)));
    EXPECT_TRUE(ledger.snapshot().templates.empty());
    EXPECT_GT(injector.injectedCount(), 0u);
}

// ---------------------------------------------------------------------
// Scheduler

Snapshot
snapshotWith(TemplateCoverage tc, const std::string &templ = "Stride")
{
    Snapshot snap;
    snap.templates[templ] = std::move(tc);
    return snap;
}

TEST(Cover, PlanRoundIsLeastCoveredFirst)
{
    TemplateCoverage tc;
    tc.universe = 8;
    tc.classes[0] = {2, 2, 0.0}; // most covered: must come last
    tc.classes[1] = {1, 1, 0.0};
    const Snapshot snap = snapshotWith(std::move(tc));

    const RoundPlan plan = planRound(snap, "Stride", 42, 0, 8);
    ASSERT_EQ(plan.classOrder.size(), 8u);
    EXPECT_FALSE(plan.saturated);
    // The six never-drawn classes precede both drawn ones.
    EXPECT_EQ(plan.classOrder[6], 1);
    EXPECT_EQ(plan.classOrder[7], 0);
}

TEST(Cover, PlanRoundDrawTieBreaksOnDraws)
{
    TemplateCoverage tc;
    tc.universe = 4;
    tc.classes[0] = {1, 3, 0.0};
    tc.classes[1] = {1, 1, 0.0}; // same hits, fewer draws: earlier
    tc.classes[2] = {0, 1, 0.0}; // hitless, not yet exhausted: first
    tc.classes[3] = {2, 2, 0.0};
    const Snapshot snap = snapshotWith(std::move(tc));

    const RoundPlan plan = planRound(snap, "Stride", 42, 0, 4);
    ASSERT_EQ(plan.classOrder.size(), 4u);
    EXPECT_EQ(plan.classOrder[0], 2);
    EXPECT_EQ(plan.classOrder[1], 1);
    EXPECT_EQ(plan.classOrder[2], 0);
    EXPECT_EQ(plan.classOrder[3], 3);
}

TEST(Cover, PlanRoundExcludesExhaustedAndSaturates)
{
    TemplateCoverage tc;
    tc.universe = 4;
    tc.classes[0] = {1, 1, 0.0};
    tc.classes[1] = {5, 6, 0.0};
    tc.classes[2] = {2, 2, 0.0};
    tc.classes[3] = {0, 3, 0.0}; // 3 hitless draws: exhausted
    const Snapshot snap = snapshotWith(std::move(tc));

    const RoundPlan plan = planRound(snap, "Stride", 42, 0, 4);
    EXPECT_TRUE(plan.saturated);
    ASSERT_EQ(plan.classOrder.size(), 3u);
    for (int cls : plan.classOrder)
        EXPECT_NE(cls, 3);
}

TEST(Cover, PlanRoundNeverSaturatesWithUndrawnClasses)
{
    TemplateCoverage tc;
    tc.universe = 4;
    tc.classes[0] = {1, 1, 0.0};
    const Snapshot snap = snapshotWith(std::move(tc));
    EXPECT_FALSE(planRound(snap, "Stride", 42, 0, 4).saturated);
    // A Pc-only campaign (no universe) has no line plan at all.
    const RoundPlan none = planRound(snap, "Stride", 42, 0, 0);
    EXPECT_TRUE(none.classOrder.empty());
    EXPECT_FALSE(none.saturated);
}

TEST(Cover, PlanRoundIsSeededAndRoundVarying)
{
    const Snapshot empty; // all 128 classes tie at zero coverage
    const RoundPlan a = planRound(empty, "Stride", 42, 0, 128);
    const RoundPlan b = planRound(empty, "Stride", 42, 0, 128);
    const RoundPlan c = planRound(empty, "Stride", 42, 1, 128);
    const RoundPlan d = planRound(empty, "Stride", 43, 0, 128);
    EXPECT_EQ(a.classOrder, b.classOrder); // pure function of args
    EXPECT_NE(a.classOrder, c.classOrder); // tie-break varies by round
    EXPECT_NE(a.classOrder, d.classOrder); // ... and by seed
}

TEST(Cover, PlanClassStratifiesSlots)
{
    RoundPlan plan;
    plan.classOrder = {5, 6, 7, 8};
    // Slot s's draw d targets classOrder[(s + d*stride) % n].
    EXPECT_EQ(planClass(plan, 0, 0, 2), 5);
    EXPECT_EQ(planClass(plan, 1, 0, 2), 6);
    EXPECT_EQ(planClass(plan, 0, 1, 2), 7);
    EXPECT_EQ(planClass(plan, 1, 1, 2), 8);
    EXPECT_EQ(planClass(plan, 0, 2, 2), 5); // wraps
    EXPECT_EQ(planClass(RoundPlan{}, 0, 0, 1), -1);
}

TEST(Cover, TemplateWeightsFavorUnknownAndUndecided)
{
    TemplateCoverage decided;
    decided.universe = 4;
    decided.classes[0] = {1, 1, 0.0};
    decided.models["Mpart"].counterexamples = 3;

    TemplateCoverage undecided;
    undecided.universe = 4;
    undecided.classes[0] = {1, 1, 0.0};
    undecided.models["Mpart"].experiments = 3;

    Snapshot snap;
    snap.templates["Template A"] = decided;
    snap.templates["Template B"] = undecided;

    const std::vector<std::string> templates{"Template A", "Template B",
                                             "Template C"};
    const std::vector<double> w = templateWeights(snap, templates, 4);
    ASSERT_EQ(w.size(), 3u);
    EXPECT_LT(w[0], w[1]); // decided templates yield budget
    EXPECT_LT(w[1], w[2]); // never-seen templates get the most
}

TEST(Cover, TemplateWeightsZeroForSaturatedDecided)
{
    TemplateCoverage tc;
    tc.universe = 1;
    tc.classes[0] = {1, 1, 0.0};
    tc.models["Mct"].counterexamples = 1;
    const Snapshot snap = snapshotWith(std::move(tc), "Template A");
    const std::vector<double> w =
        templateWeights(snap, {"Template A"}, 1);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0], 0.0);
}

TEST(Cover, WeightedAssignmentApportionsAndInterleaves)
{
    const std::vector<int> a = weightedAssignment({3.0, 1.0}, 4);
    ASSERT_EQ(a.size(), 4u);
    EXPECT_EQ(std::count(a.begin(), a.end(), 0), 3);
    EXPECT_EQ(std::count(a.begin(), a.end(), 1), 1);
    // Round-robin interleave: the round must not start single-template.
    EXPECT_EQ(a[0], 0);
    EXPECT_EQ(a[1], 1);

    // All-zero weights fall back to uniform.
    const std::vector<int> u = weightedAssignment({0.0, 0.0}, 4);
    EXPECT_EQ(std::count(u.begin(), u.end(), 0), 2);
    EXPECT_EQ(std::count(u.begin(), u.end(), 1), 2);
}

TEST(Cover, RoundSizeIsPureAndClamped)
{
    EXPECT_EQ(roundSizeFor(1), 2);   // floor
    EXPECT_EQ(roundSizeFor(40), 8);  // programs / 5
    EXPECT_EQ(roundSizeFor(500), 16); // ceiling
    EXPECT_EQ(roundSizeFor(40), roundSizeFor(40));
}

// ---------------------------------------------------------------------
// Pipeline integration

core::PipelineConfig
strideConfig()
{
    core::PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::Stride;
    cfg.model = obs::ModelKind::Mpart;
    cfg.refinement = obs::ModelKind::MpartRefined;
    cfg.coverage = core::Coverage::PcAndLine;
    cfg.programs = 6;
    cfg.testsPerProgram = 6;
    cfg.seed = 42;
    cfg.modelParams.attacker.loSet = 61;
    cfg.platform.visibleLoSet = 61;
    cfg.platform.visibleHiSet = 127;
    cfg.deterministicMetricsTiming = true;
    return cfg;
}

std::string
dbCsv(const core::ExperimentDb &db, const char *tag)
{
    const std::string path = tmpPath(tag);
    EXPECT_TRUE(db.exportCsv(path));
    const std::string text = readFile(path);
    std::remove(path.c_str());
    return text;
}

void
clearScheduleEnv()
{
    ::unsetenv("SCAMV_SCHEDULE");
    ::unsetenv("SCAMV_COVERAGE_FILE");
}

TEST(CoverPipeline, UniformUntrackedEmitsNoCoverageAccounting)
{
    clearScheduleEnv();
    core::PipelineConfig cfg = strideConfig();
    const core::RunStats stats = core::Pipeline(cfg).run();
    EXPECT_FALSE(stats.coverageTracked);
    EXPECT_EQ(stats.coveredClasses, 0);
    EXPECT_EQ(stats.classUniverse, 0u);
    EXPECT_TRUE(stats.coverage.templates.empty());
    for (const auto &[name, value] : stats.metrics.counters)
        EXPECT_NE(name.rfind("cover.", 0), 0u)
            << name << " = " << value;
}

TEST(CoverPipeline, UniformTrackedMatchesUntrackedResults)
{
    clearScheduleEnv();
    core::ExperimentDb db_plain, db_tracked;
    core::PipelineConfig plain = strideConfig();
    plain.database = &db_plain;
    const core::RunStats a = core::Pipeline(plain).run();

    CoverageLedger ledger;
    core::PipelineConfig tracked = strideConfig();
    tracked.database = &db_tracked;
    tracked.coverageLedger = &ledger;
    const core::RunStats b = core::Pipeline(tracked).run();

    // Accounting must observe, never steer: same campaign results.
    EXPECT_EQ(a.programs, b.programs);
    EXPECT_EQ(a.experiments, b.experiments);
    EXPECT_EQ(a.counterexamples, b.counterexamples);
    EXPECT_EQ(a.inconclusive, b.inconclusive);
    EXPECT_EQ(a.generationFailures, b.generationFailures);
    EXPECT_EQ(dbCsv(db_plain, "uni_plain"),
              dbCsv(db_tracked, "uni_tracked"));

    EXPECT_FALSE(a.coverageTracked);
    EXPECT_TRUE(b.coverageTracked);
    EXPECT_GT(b.coveredClasses, 0);
    EXPECT_EQ(b.classUniverse, 128u);
    EXPECT_EQ(b.coverage, ledger.snapshot());
}

TEST(CoverPipeline, DbRecordsCarryChosenLineClasses)
{
    clearScheduleEnv();
    core::ExperimentDb db;
    core::PipelineConfig cfg = strideConfig();
    cfg.database = &db;
    const core::RunStats stats = core::Pipeline(cfg).run();
    ASSERT_GT(stats.experiments, 0);
    ASSERT_GT(db.size(), 0u);
    int with_class = 0;
    for (const core::ExperimentRecord &r : db.all()) {
        if (r.lineClass1 >= 0) {
            ++with_class;
            EXPECT_LT(r.lineClass1, 128);
        }
    }
    // PcAndLine campaigns pin a class on essentially every test.
    EXPECT_GT(with_class, 0);
    const std::string csv = dbCsv(db, "line_cls");
    EXPECT_NE(csv.find("line_class1"), std::string::npos);
    EXPECT_NE(csv.find("line_class2"), std::string::npos);
}

std::string
runAdaptive(const core::PipelineConfig &base, int threads,
            CoverageLedger &ledger, core::ExperimentDb &db,
            core::RunStats *stats_out = nullptr,
            qcache::QueryCache *qc = nullptr)
{
    core::PipelineConfig cfg = base;
    cfg.schedule = core::Schedule::Adaptive;
    cfg.threads = threads;
    cfg.coverageLedger = &ledger;
    cfg.database = &db;
    cfg.queryCache = qc;
    const core::RunStats stats = core::Pipeline(cfg).run();
    if (stats_out)
        *stats_out = stats;
    return metrics::toJson(stats.metrics);
}

TEST(CoverPipeline, AdaptiveLedgerIsThreadCountByteIdentical)
{
    clearScheduleEnv();
    const core::PipelineConfig cfg = strideConfig();

    CoverageLedger ledger1, ledger4;
    core::ExperimentDb db1, db4;
    const std::string j1 = runAdaptive(cfg, 1, ledger1, db1);
    const std::string j4 = runAdaptive(cfg, 4, ledger4, db4);

    EXPECT_EQ(toJson(ledger1.snapshot()), toJson(ledger4.snapshot()));
    EXPECT_EQ(j1, j4);
    EXPECT_EQ(dbCsv(db1, "adaptive_t1"), dbCsv(db4, "adaptive_t4"));
}

TEST(CoverPipeline, AdaptiveWarmQcacheIsByteIdentical)
{
    clearScheduleEnv();
    // Branchy template + training: under PcAndLine coverage the
    // branch-predictor training solves are the cacheable queries, so
    // a warm cache replays them while the adaptive plan re-runs.
    core::PipelineConfig cfg = strideConfig();
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    const std::string path = tmpPath("qcache");
    std::remove(path.c_str());

    CoverageLedger led_cold, led_warm1, led_warm4;
    core::ExperimentDb db_cold, db_warm1, db_warm4;
    std::string j_cold, j_warm1, j_warm4;
    {
        qcache::QueryCache cold({8 << 20, path});
        j_cold = runAdaptive(cfg, 1, led_cold, db_cold, nullptr, &cold);
    }
    const std::uint64_t h0 =
        metrics::Registry::global().counter("qcache.hit").value();
    {
        qcache::QueryCache warm({8 << 20, path});
        j_warm1 =
            runAdaptive(cfg, 1, led_warm1, db_warm1, nullptr, &warm);
    }
    EXPECT_GT(metrics::Registry::global().counter("qcache.hit").value(),
              h0);
    {
        qcache::QueryCache warm({8 << 20, path});
        j_warm4 =
            runAdaptive(cfg, 4, led_warm4, db_warm4, nullptr, &warm);
    }
    std::remove(path.c_str());

    const std::string ledger_json = toJson(led_cold.snapshot());
    EXPECT_EQ(ledger_json, toJson(led_warm1.snapshot()));
    EXPECT_EQ(ledger_json, toJson(led_warm4.snapshot()));
    EXPECT_EQ(j_cold, j_warm1);
    EXPECT_EQ(j_warm1, j_warm4);
    EXPECT_EQ(dbCsv(db_cold, "qc_cold"), dbCsv(db_warm1, "qc_warm1"));
    EXPECT_EQ(dbCsv(db_warm1, "qc_warm1b"),
              dbCsv(db_warm4, "qc_warm4"));
}

TEST(CoverPipeline, AdaptiveSaturationStopsEarly)
{
    clearScheduleEnv();
    core::PipelineConfig cfg = strideConfig();
    // Shrink the class universe so a small campaign can saturate it.
    cfg.modelParams.geom.numSets = 16;
    cfg.platform.core.geom.numSets = 16;
    cfg.platform.visibleHiSet = 15;
    cfg.platform.visibleLoSet = 8;
    cfg.modelParams.attacker.loSet = 8;
    cfg.programs = 24;
    cfg.testsPerProgram = 8;

    CoverageLedger ledger;
    core::ExperimentDb db;
    core::RunStats stats;
    runAdaptive(cfg, 1, ledger, db, &stats);

    EXPECT_TRUE(stats.coverageTracked);
    EXPECT_EQ(stats.classUniverse, 16u);
    EXPECT_GT(stats.earlyStopped, 0);
    EXPECT_LT(stats.programs, cfg.programs);
    EXPECT_EQ(stats.metrics.counters.count("cover.early_stop"), 1u);
    // Saturation means every class was covered or exhausted.
    const TemplateCoverage &tc =
        stats.coverage.templates.at("Stride");
    for (std::uint64_t cls = 0; cls < 16; ++cls) {
        const auto it = tc.classes.find(static_cast<int>(cls));
        ASSERT_NE(it, tc.classes.end()) << "class " << cls;
        EXPECT_TRUE(it->second.hits > 0 || it->second.draws >= 3)
            << "class " << cls;
    }
}

TEST(CoverPipeline, AdaptiveTargetsFreshClasses)
{
    clearScheduleEnv();
    CoverageLedger ledger;
    core::ExperimentDb db;
    core::RunStats a;
    runAdaptive(strideConfig(), 1, ledger, db, &a);

    // Far from saturation (36 tests, 128 classes) the least-covered
    // walk pins a *fresh* class on nearly every experiment; a uniform
    // draw would repeat itself long before that.
    EXPECT_GT(a.experiments, 0);
    EXPECT_GE(a.coveredClasses * 4, a.experiments * 3);
}

TEST(CoverPipeline, EnvScheduleAndCoverageFile)
{
    const std::string path = tmpPath("env_export");
    std::remove(path.c_str());
    ::setenv("SCAMV_SCHEDULE", "adaptive", 1);
    ::setenv("SCAMV_COVERAGE_FILE", path.c_str(), 1);
    core::PipelineConfig cfg = strideConfig();
    cfg.programs = 3;
    cfg.testsPerProgram = 4;
    const core::RunStats stats = core::Pipeline(cfg).run();
    clearScheduleEnv();

    EXPECT_TRUE(stats.coverageTracked);
    EXPECT_EQ(stats.metrics.counters.count("cover.rounds"), 1u);
    EXPECT_EQ(readFile(path), toJson(stats.coverage));
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Fault campaigns

TEST(CoverFaultCampaign, MergeFaultsDegradeToUniform)
{
    clearScheduleEnv();
    core::PipelineConfig cfg = strideConfig();
    cfg.faultPlan.rate = 1.0;
    cfg.faultPlan.mask =
        1u << static_cast<int>(faults::Site::CoverLedgerMerge);

    CoverageLedger ledger1, ledger4;
    core::ExperimentDb db1, db4;
    core::RunStats s1, s4;
    const std::string j1 = runAdaptive(cfg, 1, ledger1, db1, &s1);
    const std::string j4 = runAdaptive(cfg, 4, ledger4, db4, &s4);

    // Every merge drops: the campaign still completes every program,
    // degraded to uniform scheduling, and reports the drops.
    EXPECT_EQ(s1.programs, cfg.programs);
    EXPECT_GT(s1.experiments, 0);
    EXPECT_TRUE(s1.schedulerDegraded);
    EXPECT_GT(s1.ledgerMergeDrops, 0);
    EXPECT_EQ(s1.metrics.counters.count("cover.degraded"), 1u);
    EXPECT_TRUE(ledger1.snapshot().templates.empty());

    // Degradation decisions happen on the merge thread, so fault
    // campaigns stay byte-identical across thread counts too.
    EXPECT_EQ(j1, j4);
    EXPECT_EQ(dbCsv(db1, "fault_t1"), dbCsv(db4, "fault_t4"));
    EXPECT_EQ(s1.ledgerMergeDrops, s4.ledgerMergeDrops);
}

} // namespace
} // namespace scamv::cover
