/**
 * @file
 * Sharded campaign tests: planner partition laws, artifact round
 * trip, and the determinism contract — a coordinator merge of N
 * shard outputs is byte-identical to a 1-process, 1-thread run
 * (ARCHITECTURE.md, invariant 8) across cold, qcache-warm and
 * fault-plan-all campaigns, with drop-and-count handling of corrupt,
 * truncated and missing shard artifacts and `--rerun-missing`
 * recovery.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "shard/shard.hh"
#include "support/env.hh"
#include "support/faults.hh"
#include "support/metrics.hh"
#include "support/rng.hh"
#include "support/qcache/qcache.hh"

namespace fs = std::filesystem;
using namespace scamv;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return in ? ss.str() : std::string("<unreadable:" + path + ">");
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << text;
}

/** Fresh per-test scratch directory under the gtest temp root. */
std::string
freshDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "scamv_shard_" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::uint64_t
globalCounter(const std::string &name)
{
    const metrics::Snapshot snap =
        metrics::Registry::global().snapshot();
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
}

core::PipelineConfig
testCfg(int programs, bool adaptive = false, bool line = false)
{
    return shard::defaultWorkload(programs, /*tests=*/3, /*seed=*/7,
                                  adaptive, line);
}

/** 1-process, 1-thread reference run writing the campaign artifact
 *  set (and optionally a qcache checkpoint) into `dir`. */
core::RunStats
runReference(core::PipelineConfig cfg, const std::string &dir,
             std::size_t qcache_mb = 0)
{
    fs::create_directories(dir);
    cover::CoverageLedger ledger;
    core::ExperimentDb db;
    cfg.coverageLedger = &ledger;
    cfg.database = &db;
    std::unique_ptr<qcache::QueryCache> cache;
    if (qcache_mb) {
        qcache::CacheConfig qc;
        qc.maxBytes = qcache_mb << 20;
        qc.filePath = dir + "/" + shard::kQcacheFile;
        cache = std::make_unique<qcache::QueryCache>(qc);
        cfg.queryCache = cache.get();
    }
    core::Pipeline pipeline(cfg);
    const core::RunStats stats = pipeline.run();
    EXPECT_TRUE(shard::writeCampaignArtifacts(stats, &db, dir));
    return stats;
}

std::vector<shard::WorkerResult>
runWorkers(const core::PipelineConfig &cfg, int n,
           const std::string &root)
{
    std::vector<shard::WorkerResult> out;
    for (int i = 0; i < n; ++i) {
        core::PipelineConfig wcfg = cfg;
        cover::CoverageLedger ledger;
        wcfg.coverageLedger = &ledger;
        out.push_back(shard::runWorker(wcfg, shard::ShardSpec{i, n},
                                       shard::shardDir(root, i)));
        EXPECT_TRUE(out.back().ok);
    }
    return out;
}

shard::MergeResult
runMerge(core::PipelineConfig cfg, int n, const std::string &root,
         const shard::MergeOptions &opts = {})
{
    cover::CoverageLedger ledger;
    core::ExperimentDb db;
    cfg.coverageLedger = &ledger;
    cfg.database = &db;
    return shard::mergeCampaign(cfg, n, root, opts);
}

void
expectArtifactsEqual(const std::string &root, const std::string &ref,
                     bool with_qcache)
{
    std::vector<std::string> files = {
        shard::kMetricsFile, shard::kCoverageFile, shard::kDbFile,
        shard::kStatsFile};
    if (with_qcache)
        files.push_back(shard::kQcacheFile);
    for (const std::string &f : files)
        EXPECT_EQ(readFile(root + "/" + f), readFile(ref + "/" + f))
            << "artifact " << f << " differs between " << root
            << " and " << ref;
}

class ShardTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        // The byte-identity contract assumes workers, coordinator and
        // reference answer environment questions identically; scrub
        // every knob resolveCampaignEnv and the worker consult.
        for (const char *var :
             {"SCAMV_QCACHE_MB", "SCAMV_QCACHE_FILE",
              "SCAMV_FAULT_RATE", "SCAMV_FAULT_PLAN",
              "SCAMV_SCHEDULE", "SCAMV_COVERAGE_FILE",
              "SCAMV_METRICS", "SCAMV_METRICS_TABLE",
              "SCAMV_THREADS", "SCAMV_RETRY_MAX", "SCAMV_SOLVER",
              "SCAMV_SHARD", "SCAMV_SHARD_DIR"})
            unsetenv(var);
    }
};

} // namespace

// ---------------------------------------------------------------
// Planner: exhaustive, non-overlapping, contiguous, deterministic.

TEST(ShardPlan, PartitionIsExhaustiveAndNonOverlapping)
{
    for (const std::uint64_t seed :
         {std::uint64_t{1}, std::uint64_t{7}, std::uint64_t{0x5eed}}) {
        for (const int programs : {0, 1, 5, 16, 17, 33, 100}) {
            for (int n = 1; n <= 8; ++n) {
                const int base = programs / n;
                int next = 0;
                for (int i = 0; i < n; ++i) {
                    const shard::Slice s =
                        shard::planShard(seed, programs, n, i);
                    EXPECT_EQ(s.first, next)
                        << "gap/overlap at shard " << i << "/" << n
                        << " programs=" << programs;
                    EXPECT_GE(s.count, base);
                    EXPECT_LE(s.count, base + 1);
                    next += s.count;
                    // Pure function: recomputing gives the same slice.
                    EXPECT_EQ(shard::planShard(seed, programs, n, i),
                              s);
                }
                EXPECT_EQ(next, programs)
                    << "partition not exhaustive for n=" << n;
            }
        }
    }
}

TEST(ShardPlan, SeedMovesTheRemainder)
{
    // 10 programs over 4 shards: two shards carry 3, two carry 2.
    // Which ones depends on the seed (but never on anything else).
    bool saw_difference = false;
    const shard::Slice ref = shard::planShard(1, 10, 4, 0);
    for (std::uint64_t seed = 2; seed < 30 && !saw_difference; ++seed)
        saw_difference = !(shard::planShard(seed, 10, 4, 0) == ref);
    EXPECT_TRUE(saw_difference);
}

TEST(ShardPlan, ParseSpec)
{
    const auto ok = shard::parseShardSpec("2/4");
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->index, 2);
    EXPECT_EQ(ok->count, 4);
    EXPECT_TRUE(shard::parseShardSpec("0/1").has_value());
    for (const char *bad : {"", "/", "1", "1/", "/4", "4/4", "5/4",
                            "-1/4", "a/4", "1/b", "1/0", "1/4/2"})
        EXPECT_FALSE(shard::parseShardSpec(bad).has_value())
            << "accepted \"" << bad << "\"";
}

TEST_F(ShardTest, SpecAndDirFromEnv)
{
    EXPECT_FALSE(shard::specFromEnv().has_value());
    setenv("SCAMV_SHARD", "1/3", 1);
    const auto spec = shard::specFromEnv();
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->index, 1);
    EXPECT_EQ(spec->count, 3);
    setenv("SCAMV_SHARD", "nonsense", 1);
    EXPECT_FALSE(shard::specFromEnv().has_value());
    unsetenv("SCAMV_SHARD");

    EXPECT_EQ(shard::dirFromEnv("fallback"), "fallback");
    setenv("SCAMV_SHARD_DIR", "/tmp/x", 1);
    EXPECT_EQ(shard::dirFromEnv("fallback"), "/tmp/x");
    unsetenv("SCAMV_SHARD_DIR");
}

// ---------------------------------------------------------------
// Artifact codec: lossless round trip, group-granular damage.

namespace {

core::CampaignSlice
sampleSlice()
{
    core::CampaignSlice slice;
    slice.first = 3;
    slice.count = 3;
    slice.earlyStopped = 1;
    slice.scheduleLocal = true;
    slice.outcomes.resize(3);

    core::ProgramOutcome &a = slice.outcomes[0];
    a.hasCex = true;
    a.name = "Template A#3"; // space and '#' in the name
    a.firstCexOffsetSeconds = 0.125;
    a.taskSeconds = 1.5;
    a.metrics.counters["pipeline.experiments"] = 4;
    a.metrics.gauges["pipeline.task_seconds"] = 1.5;
    metrics::HistogramData h;
    h.bounds = {1e-6, 1e-3, 1.0};
    h.counts = {2, 1, 0, 1};
    h.sum = 0.75;
    h.count = 4;
    a.metrics.histograms["phase.smt_seconds"] = h;
    a.coverDelta.templ = "Stride";
    a.coverDelta.model = "Mpart";
    a.coverDelta.universe = 128;
    a.coverDelta.verdicts.experiments = 4;
    a.coverDelta.verdicts.counterexamples = 1;
    a.coverDelta.classes[61] = cover::ClassStats{2, 3, 0.25};
    a.coverDelta.pathPairs["T|FF"] = 2;
    core::ExperimentRecord r;
    r.programName = "Template A#3";
    r.programText = "load x1, [x0]\nstore -%1 100%\n"; // newlines, %
    r.pathId = "-"; // the escaped-dash edge case
    r.trained = true;
    r.lineClass1 = 61;
    r.lineClass2 = -1;
    r.verdict = harness::Verdict::Counterexample;
    r.differingReps = 10;
    r.totalReps = 10;
    r.testCase.s1.regs.regs[0] = 0x80000;
    r.testCase.s1.regs.regs[3] = 0xdeadbeef;
    r.testCase.s1.mem = {{0x80000, 0x40}, {0x80040, 0}};
    r.testCase.s2.regs.regs[0] = 0x80040;
    a.records.push_back(r);

    core::ProgramOutcome &b = slice.outcomes[1];
    b.failed = true;
    b.name = "Stride#4";
    b.metrics.counters["pipeline.program_failures"] = 1;

    // outcomes[2] stays empty (an adaptive early-stopped slot).
    return slice;
}

core::PipelineConfig
sampleCfg()
{
    core::PipelineConfig cfg;
    cfg.seed = 0xabcdef;
    cfg.programs = 9;
    return cfg;
}

} // namespace

TEST_F(ShardTest, ArtifactRoundTripIsLossless)
{
    const core::CampaignSlice slice = sampleSlice();
    const core::PipelineConfig cfg = sampleCfg();
    const shard::ShardSpec spec{1, 3};
    const std::string text = shard::encodeSlice(slice, spec, cfg);

    const auto dec = shard::decodeSlice(text);
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(dec->spec, spec);
    EXPECT_EQ(dec->seed, cfg.seed);
    EXPECT_EQ(dec->programs, cfg.programs);
    EXPECT_EQ(dec->slice.first, slice.first);
    EXPECT_EQ(dec->slice.count, slice.count);
    EXPECT_EQ(dec->slice.earlyStopped, slice.earlyStopped);
    EXPECT_EQ(dec->slice.scheduleLocal, slice.scheduleLocal);
    EXPECT_EQ(dec->droppedGroups, 0u);
    for (int k = 0; k < slice.count; ++k)
        EXPECT_TRUE(dec->present[static_cast<std::size_t>(k)]);

    // Field-level checks on the interesting outcome...
    const core::ProgramOutcome &got = dec->slice.outcomes[0];
    const core::ProgramOutcome &want = slice.outcomes[0];
    EXPECT_EQ(got.hasCex, want.hasCex);
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.firstCexOffsetSeconds, want.firstCexOffsetSeconds);
    EXPECT_EQ(got.metrics, want.metrics);
    EXPECT_EQ(got.coverDelta, want.coverDelta);
    ASSERT_EQ(got.records.size(), 1u);
    EXPECT_EQ(got.records[0].programText, want.records[0].programText);
    EXPECT_EQ(got.records[0].pathId, want.records[0].pathId);
    EXPECT_EQ(got.records[0].testCase, want.records[0].testCase);
    EXPECT_EQ(got.records[0].verdict, want.records[0].verdict);

    // ...and the decisive one: re-encoding the decoded slice
    // reproduces the artifact byte for byte.
    EXPECT_EQ(shard::encodeSlice(dec->slice, dec->spec, cfg), text);
}

TEST_F(ShardTest, DamagedLineDropsOnlyItsGroup)
{
    const std::string text = shard::encodeSlice(
        sampleSlice(), shard::ShardSpec{1, 3}, sampleCfg());
    // Damage the second group's counter line (group order: P for
    // k=0 ... P for k=1, then its C line).
    const std::size_t p1 = text.find("\nP 1 ");
    ASSERT_NE(p1, std::string::npos);
    const std::size_t cline = text.find("\nC ", p1);
    ASSERT_NE(cline, std::string::npos);
    std::string damaged = text;
    damaged[cline + 3] ^= 1;

    const auto dec = shard::decodeSlice(damaged);
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(dec->droppedGroups, 1u);
    EXPECT_TRUE(dec->present[0]);
    EXPECT_FALSE(dec->present[1]);
    EXPECT_TRUE(dec->present[2]);
}

TEST_F(ShardTest, TruncatedArtifactDropsTailGroups)
{
    const std::string text = shard::encodeSlice(
        sampleSlice(), shard::ShardSpec{1, 3}, sampleCfg());
    // Truncation at a line boundary: the last complete group
    // survives, everything after the cut is dropped and counted.
    const std::size_t p1 = text.find("\nP 1 ");
    ASSERT_NE(p1, std::string::npos);
    const auto clean = shard::decodeSlice(
        std::string_view(text).substr(0, p1 + 1));
    ASSERT_TRUE(clean.has_value());
    EXPECT_TRUE(clean->present[0]);
    EXPECT_FALSE(clean->present[1]);
    EXPECT_FALSE(clean->present[2]);
    EXPECT_EQ(clean->droppedGroups, 2u);

    // Mid-line truncation: the dangling fragment poisons the group
    // that is open at the cut — conservative, because that group may
    // be missing lines.
    const auto torn = shard::decodeSlice(
        std::string_view(text).substr(0, text.find("\nP 2 ") + 7));
    ASSERT_TRUE(torn.has_value());
    EXPECT_TRUE(torn->present[0]);
    EXPECT_FALSE(torn->present[1]);
    EXPECT_FALSE(torn->present[2]);
    EXPECT_EQ(torn->droppedGroups, 2u);
}

TEST_F(ShardTest, ForeignHeaderRejectsArtifact)
{
    EXPECT_FALSE(shard::decodeSlice("").has_value());
    EXPECT_FALSE(shard::decodeSlice("not-a-shard-artifact\n")
                     .has_value());
    // A valid header whose checksum was tampered with.
    std::string text = shard::encodeSlice(
        sampleSlice(), shard::ShardSpec{1, 3}, sampleCfg());
    text[text.find('\n') - 1] ^= 1;
    EXPECT_FALSE(shard::decodeSlice(text).has_value());
}

TEST_F(ShardTest, InjectedCorruptionDropsGroups)
{
    const std::string text = shard::encodeSlice(
        sampleSlice(), shard::ShardSpec{1, 3}, sampleCfg());
    faults::FaultPlan plan;
    plan.rate = 1.0;
    plan.mask = 1u
                << static_cast<int>(faults::Site::ShardArtifactCorrupt);
    faults::Injector injector(plan, /*seed=*/7, /*prog=*/0);
    metrics::Registry scratch(metrics::ClockMode::Deterministic);
    metrics::ScopedRegistry reg_scope(scratch);
    faults::ScopedInjector inj_scope(injector);
    const auto dec = shard::decodeSlice(text);
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(dec->droppedGroups, 3u);
    for (int k = 0; k < 3; ++k)
        EXPECT_FALSE(dec->present[static_cast<std::size_t>(k)]);
}

// ---------------------------------------------------------------
// The determinism contract: merged == single-process, byte for byte.

TEST_F(ShardTest, MergedCampaignMatchesSingleProcessCold)
{
    const core::PipelineConfig cfg = testCfg(10);
    const std::string ref = freshDir("ref_cold");
    runReference(cfg, ref);
    for (const int n : {1, 2, 4}) {
        const std::string root =
            freshDir("cold_" + std::to_string(n));
        runWorkers(cfg, n, root);
        const shard::MergeResult res = runMerge(cfg, n, root);
        EXPECT_TRUE(res.missingPrograms.empty());
        EXPECT_EQ(res.droppedGroups, 0u);
        expectArtifactsEqual(root, ref, /*with_qcache=*/false);
    }
}

TEST_F(ShardTest, MergedCampaignMatchesSingleProcessQcacheWarm)
{
    const core::PipelineConfig cfg = testCfg(8);
    // Cold cached reference produces the full campaign checkpoint.
    const std::string ref = freshDir("ref_qcache");
    runReference(cfg, ref, /*qcache_mb=*/8);
    const std::string checkpoint =
        readFile(ref + "/" + shard::kQcacheFile);
    ASSERT_NE(checkpoint.find("scamv-qcache-v1"), std::string::npos);

    setenv("SCAMV_QCACHE_MB", "8", 1);
    for (const int n : {2, 4}) {
        const std::string root =
            freshDir("warm_" + std::to_string(n));
        // Warm start: every shard begins from the full checkpoint,
        // all solves hit, and the merged checkpoint collapses back
        // to the reference file.
        for (int i = 0; i < n; ++i) {
            fs::create_directories(shard::shardDir(root, i));
            writeFile(shard::shardDir(root, i) + "/" +
                          shard::kQcacheFile,
                      checkpoint);
        }
        runWorkers(cfg, n, root);
        const shard::MergeResult res = runMerge(cfg, n, root);
        EXPECT_TRUE(res.missingPrograms.empty());
        expectArtifactsEqual(root, ref, /*with_qcache=*/true);
    }
    // Cold shards build disjoint per-shard checkpoints whose merge
    // still reproduces the single-process file byte for byte.
    const std::string root = freshDir("qcache_cold_2");
    runWorkers(cfg, 2, root);
    runMerge(cfg, 2, root);
    expectArtifactsEqual(root, ref, /*with_qcache=*/true);

    // Losing a whole shard directory — checkpoint included — forces
    // the coordinator to re-dispatch that slice under a warm private
    // cache and reconstruct the lost checkpoint segment; the merged
    // artifacts (the campaign checkpoint among them) must still be
    // byte-identical.
    fs::remove_all(shard::shardDir(root, 1));
    shard::MergeOptions opts;
    opts.rerunMissing = true;
    const shard::MergeResult rec = runMerge(cfg, 2, root, opts);
    EXPECT_EQ(rec.droppedShards, 1u);
    EXPECT_TRUE(rec.missingPrograms.empty());
    expectArtifactsEqual(root, ref, /*with_qcache=*/true);
    unsetenv("SCAMV_QCACHE_MB");
}

TEST_F(ShardTest, MergedCampaignMatchesSingleProcessFaultPlanAll)
{
    core::PipelineConfig cfg = testCfg(10);
    cfg.faultPlan.rate = 0.2;
    cfg.faultPlan.mask = faults::FaultPlan::maskAll();
    const std::string ref = freshDir("ref_faults");
    runReference(cfg, ref);
    for (const int n : {2, 4}) {
        const std::string root =
            freshDir("faults_" + std::to_string(n));
        runWorkers(cfg, n, root);
        // The shard_artifact_corrupt site fires at load: recovery
        // via re-dispatch must restore byte-identity.
        shard::MergeOptions opts;
        opts.rerunMissing = true;
        const shard::MergeResult res = runMerge(cfg, n, root, opts);
        EXPECT_TRUE(res.missingPrograms.empty());
        expectArtifactsEqual(root, ref, /*with_qcache=*/false);
    }
}

// ---------------------------------------------------------------
// Damage handling at the coordinator.

TEST_F(ShardTest, CorruptShardArtifactDropsAndCounts)
{
    const core::PipelineConfig cfg = testCfg(8);
    const std::string ref = freshDir("ref_corrupt");
    runReference(cfg, ref);
    const std::string root = freshDir("corrupt");
    runWorkers(cfg, 2, root);

    // Flip one byte inside a record group of shard 1.
    const std::string path =
        shard::shardDir(root, 1) + "/" + shard::kOutcomesFile;
    std::string text = readFile(path);
    const std::size_t at = text.find("\nR ");
    ASSERT_NE(at, std::string::npos);
    text[at + 4] ^= 1;
    writeFile(path, text);

    const std::uint64_t dropped_before =
        globalCounter("shard.load_dropped");
    const shard::MergeResult res = runMerge(cfg, 2, root);
    EXPECT_GE(res.droppedGroups, 1u);
    EXPECT_FALSE(res.missingPrograms.empty());
    EXPECT_EQ(globalCounter("shard.load_dropped"),
              dropped_before + res.droppedGroups);

    // Re-dispatch restores byte-identity.
    shard::MergeOptions opts;
    opts.rerunMissing = true;
    const shard::MergeResult rec = runMerge(cfg, 2, root, opts);
    EXPECT_TRUE(rec.missingPrograms.empty());
    EXPECT_EQ(rec.rerunPrograms, res.missingPrograms);
    expectArtifactsEqual(root, ref, /*with_qcache=*/false);
}

TEST_F(ShardTest, TruncatedShardArtifactRecovers)
{
    const core::PipelineConfig cfg = testCfg(8);
    const std::string ref = freshDir("ref_trunc");
    runReference(cfg, ref);
    const std::string root = freshDir("trunc");
    runWorkers(cfg, 2, root);

    const std::string path =
        shard::shardDir(root, 0) + "/" + shard::kOutcomesFile;
    const std::string text = readFile(path);
    writeFile(path, text.substr(0, text.size() / 2));

    shard::MergeOptions opts;
    opts.rerunMissing = true;
    const shard::MergeResult res = runMerge(cfg, 2, root, opts);
    EXPECT_GE(res.droppedGroups, 1u);
    EXPECT_TRUE(res.missingPrograms.empty());
    EXPECT_FALSE(res.rerunPrograms.empty());
    expectArtifactsEqual(root, ref, /*with_qcache=*/false);
}

TEST_F(ShardTest, MissingShardArtifactRecovers)
{
    const core::PipelineConfig cfg = testCfg(8);
    const std::string ref = freshDir("ref_missing");
    runReference(cfg, ref);
    const std::string root = freshDir("missing");
    runWorkers(cfg, 2, root);
    fs::remove(shard::shardDir(root, 1) + "/" + shard::kOutcomesFile);

    // Without recovery: the gap is recorded, the merge completes.
    const shard::MergeResult gap = runMerge(cfg, 2, root);
    EXPECT_EQ(gap.droppedShards, 1u);
    const shard::Slice lost = shard::planShard(cfg.seed, cfg.programs,
                                               2, 1);
    EXPECT_EQ(static_cast<int>(gap.missingPrograms.size()),
              lost.count);
    EXPECT_LT(gap.stats.programs, cfg.programs);

    // With recovery: byte-identical to the reference.
    shard::MergeOptions opts;
    opts.rerunMissing = true;
    const shard::MergeResult res = runMerge(cfg, 2, root, opts);
    EXPECT_TRUE(res.missingPrograms.empty());
    EXPECT_EQ(static_cast<int>(res.rerunPrograms.size()), lost.count);
    expectArtifactsEqual(root, ref, /*with_qcache=*/false);
}

// ---------------------------------------------------------------
// Strict mode and per-shard write-drop attribution.

TEST_F(ShardTest, StrictFailsOnShardDbWriteDrops)
{
    core::PipelineConfig cfg = testCfg(8);
    cfg.faultPlan.rate = 0.8;
    cfg.faultPlan.mask = 1u
                         << static_cast<int>(faults::Site::DbWrite);
    const std::string root = freshDir("strict");
    runWorkers(cfg, 2, root);

    shard::MergeOptions opts;
    opts.strict = true;
    const shard::MergeResult res = runMerge(cfg, 2, root, opts);
    ASSERT_EQ(res.shardDbWriteDrops.size(), 2u);
    const std::int64_t total =
        res.shardDbWriteDrops[0] + res.shardDbWriteDrops[1];
    // Rate 0.8 with the default 2 retries drops >half the records;
    // 8 programs x 3 tests cannot all survive.
    EXPECT_GT(total, 0);
    EXPECT_EQ(total, res.stats.dbWriteDrops);
    EXPECT_FALSE(res.ok);

    // The same campaign without the fault plan passes --strict.
    core::PipelineConfig clean = testCfg(8);
    const std::string root2 = freshDir("strict_clean");
    runWorkers(clean, 2, root2);
    const shard::MergeResult ok = runMerge(clean, 2, root2, opts);
    EXPECT_EQ(ok.stats.dbWriteDrops, 0);
    EXPECT_TRUE(ok.ok);
}

// ---------------------------------------------------------------
// Nightly-stress entry point: unlike the ShardTest fixture this
// suite honors SCAMV_FAULT_RATE / SCAMV_FAULT_PLAN from the
// environment (falling back to shard_artifact_corrupt alone), so the
// nightly fault matrix can hammer the coordinator's load/recovery
// path at elevated rates.

TEST(ShardFaultCampaign, RecoversUnderInjectedFaults)
{
    core::PipelineConfig cfg = shard::defaultWorkload(
        /*programs=*/8, /*tests=*/3, /*seed=*/11, /*adaptive=*/false,
        /*line=*/false);
    faults::FaultPlan plan = faults::FaultPlan::fromEnv();
    if (!plan.enabled()) {
        plan.rate = 0.3;
        plan.mask =
            1u << static_cast<int>(faults::Site::ShardArtifactCorrupt);
    }
    cfg.faultPlan = plan;

    const std::string root = freshDir("fault_campaign");
    runWorkers(cfg, 2, root);
    shard::MergeOptions opts;
    opts.rerunMissing = true;
    const shard::MergeResult first = runMerge(cfg, 2, root, opts);
    EXPECT_TRUE(first.missingPrograms.empty())
        << "re-dispatch left gaps";
    // Injection is seeded: folding the same shard outputs again must
    // drop the same groups, rerun the same programs, and land on the
    // same campaign snapshot.
    const shard::MergeResult second = runMerge(cfg, 2, root, opts);
    EXPECT_EQ(first.droppedGroups, second.droppedGroups);
    EXPECT_EQ(first.rerunPrograms, second.rerunPrograms);
    EXPECT_EQ(first.stats.metrics, second.stats.metrics);
    EXPECT_EQ(first.stats.coverage, second.stats.coverage);
}

// ---------------------------------------------------------------
// Adaptive schedule: deterministic per-shard degradation.

TEST_F(ShardTest, AdaptiveShardingIsDeterministicAndCounted)
{
    const core::PipelineConfig cfg =
        testCfg(12, /*adaptive=*/true, /*line=*/true);
    const std::string root = freshDir("adaptive");
    const std::uint64_t local_before =
        globalCounter("shard.schedule_local");
    const std::vector<shard::WorkerResult> workers =
        runWorkers(cfg, 2, root);

    const shard::MergeResult first = runMerge(cfg, 2, root);
    EXPECT_EQ(globalCounter("shard.schedule_local"),
              local_before + 2);
    // Early-stop accounting is the sum of the per-shard decisions.
    EXPECT_EQ(first.stats.earlyStopped,
              workers[0].stats.earlyStopped +
                  workers[1].stats.earlyStopped);

    // The merge itself is deterministic: folding the same shard
    // outputs again reproduces every artifact byte for byte.
    std::vector<std::string> snapshot;
    for (const char *f : {shard::kMetricsFile, shard::kCoverageFile,
                          shard::kDbFile, shard::kStatsFile})
        snapshot.push_back(readFile(root + "/" + f));
    const shard::MergeResult second = runMerge(cfg, 2, root);
    EXPECT_EQ(first.stats.metrics, second.stats.metrics);
    EXPECT_EQ(first.stats.coverage, second.stats.coverage);
    std::size_t at = 0;
    for (const char *f : {shard::kMetricsFile, shard::kCoverageFile,
                          shard::kDbFile, shard::kStatsFile})
        EXPECT_EQ(readFile(root + "/" + f), snapshot[at++])
            << "artifact " << f << " not deterministic";
}

// ---------------------------------------------------------------
// Satellite: planner with more shards than programs — the extra
// shards get empty slices and the partition stays exhaustive.

TEST(ShardPlan, MoreShardsThanProgramsYieldsEmptySlices)
{
    for (const int programs : {0, 1, 3}) {
        const int n = 8;
        int next = 0, empty = 0;
        for (int i = 0; i < n; ++i) {
            const shard::Slice s = shard::planShard(9, programs, n, i);
            EXPECT_EQ(s.first, next);
            EXPECT_GE(s.count, 0);
            EXPECT_LE(s.count, 1);
            if (s.count == 0)
                ++empty;
            next += s.count;
        }
        EXPECT_EQ(next, programs);
        EXPECT_EQ(empty, n - programs);
    }
}

// ---------------------------------------------------------------
// Property fuzz: randomly generated slices — hostile strings,
// non-finite doubles, empty states — round-trip byte-identically
// through the artifact codec.

namespace {

/** SCAMV_FUZZ_ITERS scale, like test_solver_fuzz. */
int
fuzzIters(int base)
{
    static const int scale = static_cast<int>(
        envLong("SCAMV_FUZZ_ITERS", 1, 1000).value_or(1));
    return base * scale;
}

/** Random text exercising every escaping path of the codec. */
std::string
randomText(Rng &rng)
{
    static const char *const kAtoms[] = {
        "plain", "with space", "%", "%%20", "-", "#", "a\nb",
        "tab\there", "\x01\x02", "trailing ", " leading", "",
        "100% done", "\x1f\x7f", "nan", "0x,:;|",
    };
    std::string out;
    const int parts = static_cast<int>(rng.below(4));
    for (int i = 0; i < parts; ++i)
        out += kAtoms[rng.below(std::size(kAtoms))];
    return out;
}

/** Random double including the non-finite and signed-zero cases. */
double
randomDouble(Rng &rng)
{
    switch (rng.below(8)) {
    case 0: return 0.0;
    case 1: return -0.0;
    case 2: return std::numeric_limits<double>::infinity();
    case 3: return -std::numeric_limits<double>::infinity();
    case 4: return std::numeric_limits<double>::quiet_NaN();
    case 5: return 0.1 * static_cast<double>(rng.below(1000));
    case 6: return 1e-300 * static_cast<double>(rng.below(100));
    default:
        return static_cast<double>(static_cast<std::int64_t>(
                   rng.next())) *
               1e10;
    }
}

/** Random test case; frequently the all-empty edge. */
harness::TestCase
randomCase(Rng &rng)
{
    harness::TestCase tc;
    if (rng.below(3) == 0)
        return tc; // empty states
    const int regs = static_cast<int>(rng.below(4));
    for (int i = 0; i < regs; ++i)
        tc.s1.regs.regs[rng.below(bir::kNumRegs)] = rng.next();
    const int mems = static_cast<int>(rng.below(3));
    for (int i = 0; i < mems; ++i) {
        tc.s1.mem.emplace_back(0x80000 + 8 * rng.below(64),
                               rng.next());
        tc.s2.mem.emplace_back(0x80000 + 8 * rng.below(64),
                               rng.below(2) ? rng.next() : 0);
    }
    if (rng.below(2))
        tc.s2.regs.regs[rng.below(bir::kNumRegs)] = rng.next();
    return tc;
}

metrics::Snapshot
randomSnapshot(Rng &rng)
{
    metrics::Snapshot snap;
    const int counters = static_cast<int>(rng.below(3));
    for (int i = 0; i < counters; ++i)
        snap.counters["c." + std::to_string(rng.below(5))] =
            static_cast<std::int64_t>(rng.next());
    if (rng.below(2))
        snap.gauges["g.fuzz"] = randomDouble(rng);
    if (rng.below(2)) {
        metrics::HistogramData h;
        const int buckets = static_cast<int>(rng.below(3)) + 1;
        for (int i = 0; i < buckets; ++i)
            h.bounds.push_back(static_cast<double>(i + 1));
        h.counts.assign(h.bounds.size() + 1, 0);
        for (auto &c : h.counts)
            c = rng.below(10);
        h.sum = randomDouble(rng);
        h.count = rng.below(40);
        snap.histograms["h.fuzz"] = h;
    }
    return snap;
}

core::ProgramOutcome
randomOutcome(Rng &rng)
{
    core::ProgramOutcome o;
    o.hasCex = rng.below(2) != 0;
    o.failed = rng.below(4) == 0;
    o.quarantined = rng.below(4) == 0;
    o.name = randomText(rng);
    o.firstCexOffsetSeconds = rng.below(2) ? randomDouble(rng) : -1.0;
    o.taskSeconds = randomDouble(rng);
    o.metrics = randomSnapshot(rng);
    if (rng.below(2)) {
        o.coverDelta.templ = randomText(rng);
        o.coverDelta.model = randomText(rng);
        o.coverDelta.universe = rng.below(129);
        o.coverDelta.verdicts.experiments =
            static_cast<std::int64_t>(rng.below(100));
        o.coverDelta.classes[static_cast<int>(rng.below(128))] =
            cover::ClassStats{static_cast<std::int64_t>(rng.below(9)),
                              static_cast<std::int64_t>(rng.below(9)),
                              randomDouble(rng)};
        o.coverDelta.pathPairs[randomText(rng)] =
            static_cast<std::int64_t>(rng.below(50));
    }
    const int records = static_cast<int>(rng.below(3));
    for (int i = 0; i < records; ++i) {
        core::ExperimentRecord r;
        r.programName = randomText(rng);
        r.programText = randomText(rng);
        r.pathId = randomText(rng);
        r.testCase = randomCase(rng);
        r.trained = rng.below(2) != 0;
        r.lineClass1 = static_cast<int>(rng.below(130)) - 1;
        r.lineClass2 = static_cast<int>(rng.below(130)) - 1;
        r.verdict = static_cast<harness::Verdict>(rng.below(3));
        r.differingReps = static_cast<int>(rng.below(11));
        r.totalReps = 10;
        o.records.push_back(std::move(r));
    }
    const int findings = static_cast<int>(rng.below(3));
    for (int i = 0; i < findings; ++i) {
        triage::Finding f;
        f.progIndex = static_cast<int>(rng.below(1000));
        f.program = randomText(rng);
        f.mechanism = randomText(rng);
        f.signature = randomText(rng);
        f.minimized = rng.below(2) != 0;
        f.degraded = rng.below(2) != 0;
        f.instrsBefore = static_cast<int>(rng.below(40));
        f.instrsAfter = static_cast<int>(rng.below(40));
        f.stateBitsBefore = static_cast<int>(rng.below(200));
        f.stateBitsAfter = static_cast<int>(rng.below(200));
        f.core = randomText(rng);
        f.tc = randomCase(rng);
        o.findings.push_back(std::move(f));
    }
    return o;
}

} // namespace

TEST(ShardCodecFuzz, RandomSlicesRoundTripByteIdentically)
{
    Rng rng(0xc0dec);
    for (int iter = 0; iter < fuzzIters(40); ++iter) {
        core::CampaignSlice slice;
        slice.count = static_cast<int>(rng.below(5));
        slice.first = static_cast<int>(rng.below(20));
        slice.earlyStopped = static_cast<int>(rng.below(3));
        slice.scheduleLocal = rng.below(2) != 0;
        slice.outcomes.resize(
            static_cast<std::size_t>(slice.count));
        for (auto &o : slice.outcomes)
            if (rng.below(5) != 0) // leave some slots empty
                o = randomOutcome(rng);

        core::PipelineConfig cfg;
        cfg.seed = rng.next();
        cfg.programs = slice.first + slice.count +
                       static_cast<int>(rng.below(10));
        const shard::ShardSpec spec{
            static_cast<int>(rng.below(4)),
            static_cast<int>(rng.below(4)) + 4};

        const std::string text = shard::encodeSlice(slice, spec, cfg);
        const auto dec = shard::decodeSlice(text);
        ASSERT_TRUE(dec.has_value()) << "iter " << iter;
        EXPECT_EQ(dec->droppedGroups, 0u) << "iter " << iter;
        EXPECT_EQ(dec->seed, cfg.seed);
        EXPECT_EQ(dec->programs, cfg.programs);

        // The decisive property: re-encoding the decoded slice
        // reproduces the artifact byte for byte (NaN/inf doubles,
        // escaped strings, empty states and all).
        core::PipelineConfig cfg2;
        cfg2.seed = dec->seed;
        cfg2.programs = dec->programs;
        EXPECT_EQ(shard::encodeSlice(dec->slice, dec->spec, cfg2),
                  text)
            << "iter " << iter;
    }
}
