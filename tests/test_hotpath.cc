/**
 * @file
 * Hot-path engine tests: the support/arena bump allocator, histogram
 * quantiles (p50/p99 export), and the solver-mode byte-identity
 * contract — oneshot, incremental and portfolio campaigns must
 * produce identical verdicts, experiment logs and metrics for any
 * thread count, cold or warm query cache, and under fault injection;
 * likewise batched vs unbatched simulation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/expdb.hh"
#include "core/pipeline.hh"
#include "gen/templates.hh"
#include "obs/models.hh"
#include "smt/modes.hh"
#include "support/arena.hh"
#include "support/faults.hh"
#include "support/metrics.hh"
#include "support/qcache/qcache.hh"

namespace scamv {
namespace {

// ---------------------------------------------------------------------
// support/arena

TEST(Arena, AllocationsAreAlignedAndDisjoint)
{
    support::Arena arena(256);
    auto *a = static_cast<std::byte *>(arena.allocate(10, 1));
    auto *b = static_cast<std::byte *>(arena.allocate(16, 16));
    auto *c = static_cast<std::byte *>(arena.allocate(1, 64));
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 16, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
    // Writable and disjoint: filling one region must not clobber
    // another.
    std::fill(a, a + 10, std::byte{0xaa});
    std::fill(b, b + 16, std::byte{0xbb});
    EXPECT_EQ(a[0], std::byte{0xaa});
    EXPECT_EQ(b[0], std::byte{0xbb});
    EXPECT_GE(arena.used(), 27u);
    EXPECT_GE(arena.capacity(), arena.used());
}

TEST(Arena, ResetRetainsCapacityAndReusesBlocks)
{
    support::Arena arena(128);
    for (int i = 0; i < 64; ++i)
        arena.allocate(32, 8);
    const std::size_t cap = arena.capacity();
    EXPECT_GT(cap, 0u);

    arena.reset();
    EXPECT_EQ(arena.used(), 0u);
    EXPECT_EQ(arena.capacity(), cap);

    // Steady state: the same allocation pattern fits in the retained
    // blocks without growing.
    for (int i = 0; i < 64; ++i)
        arena.allocate(32, 8);
    EXPECT_EQ(arena.capacity(), cap);
}

TEST(Arena, OversizedAllocationGetsDedicatedBlock)
{
    support::Arena arena(64);
    auto *p = arena.allocate(4096, 8);
    ASSERT_NE(p, nullptr);
    EXPECT_GE(arena.capacity(), 4096u);
    // And the arena still serves small allocations afterwards.
    EXPECT_NE(arena.allocate(8, 8), nullptr);
}

TEST(Arena, ZeroByteAllocationYieldsUniquePointer)
{
    support::Arena arena;
    EXPECT_NE(arena.allocate(0, 1), arena.allocate(0, 1));
}

TEST(ArenaAllocator, VectorUsesArenaAndResetReclaims)
{
    support::Arena arena(1024);
    {
        support::ArenaAllocator<std::uint64_t> alloc(&arena);
        std::vector<std::uint64_t,
                    support::ArenaAllocator<std::uint64_t>>
            v(alloc);
        v.assign(100, 7);
        EXPECT_GE(arena.used(), 100 * sizeof(std::uint64_t));
        EXPECT_EQ(v[99], 7u);
    } // container destroyed before reset, per the arena contract
    const std::size_t cap = arena.capacity();
    arena.reset();
    EXPECT_EQ(arena.used(), 0u);
    EXPECT_EQ(arena.capacity(), cap);
}

TEST(ArenaAllocator, FallsBackToHeapWithoutArena)
{
    std::vector<int, support::ArenaAllocator<int>> v;
    v.assign(1000, 3);
    EXPECT_EQ(v[999], 3);
    // Equality is arena identity.
    support::Arena arena;
    support::ArenaAllocator<int> heap1, heap2, backed(&arena);
    EXPECT_TRUE(heap1 == heap2);
    EXPECT_FALSE(heap1 == backed);
}

// ---------------------------------------------------------------------
// Histogram quantiles (p50/p99 metric export)

TEST(HistogramQuantile, EmptyHistogramIsZero)
{
    metrics::HistogramData h;
    h.bounds = {1.0, 2.0};
    h.counts = {0, 0, 0};
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(HistogramQuantile, InterpolatesWithinBucket)
{
    metrics::HistogramData h;
    h.bounds = {1.0, 2.0};
    h.counts = {4, 0, 0}; // all mass in [0, 1)
    h.count = 4;
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.5);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);

    h.counts = {2, 2, 0};
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.75), 1.5);
}

TEST(HistogramQuantile, OverflowBucketClampsToLastBound)
{
    metrics::HistogramData h;
    h.bounds = {1.0, 2.0};
    h.counts = {0, 0, 3}; // all mass beyond the last bound
    h.count = 3;
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
}

TEST(HistogramQuantile, P50NeverExceedsP99)
{
    metrics::Registry reg(metrics::ClockMode::Deterministic);
    auto &h = reg.histogram("t");
    for (int i = 0; i < 100; ++i)
        h.observe(0.001 * i);
    const auto snap = reg.snapshot();
    const auto &data = snap.histograms.at("t");
    EXPECT_LE(data.quantile(0.5), data.quantile(0.99));
}

TEST(HistogramQuantile, JsonExportCarriesPercentiles)
{
    metrics::Registry reg(metrics::ClockMode::Deterministic);
    reg.histogram("lat").observe(0.5);
    const std::string json = metrics::toJson(reg.snapshot());
    EXPECT_NE(json.find("\"p50\":"), std::string::npos);
    EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

// ---------------------------------------------------------------------
// Solver modes

TEST(SolverMode, EnvParsing)
{
    unsetenv("SCAMV_SOLVER");
    EXPECT_EQ(smt::solverModeFromEnv(), smt::SolverMode::Incremental);
    setenv("SCAMV_SOLVER", "oneshot", 1);
    EXPECT_EQ(smt::solverModeFromEnv(), smt::SolverMode::Oneshot);
    setenv("SCAMV_SOLVER", "portfolio", 1);
    EXPECT_EQ(smt::solverModeFromEnv(), smt::SolverMode::Portfolio);
    setenv("SCAMV_SOLVER", "bogus", 1);
    EXPECT_EQ(smt::solverModeFromEnv(), smt::SolverMode::Incremental);
    unsetenv("SCAMV_SOLVER");
    EXPECT_STREQ(smt::solverModeName(smt::SolverMode::Oneshot),
                 "oneshot");
}

/** Campaign artifacts two runs must agree on, byte for byte. */
struct Artifacts {
    std::string metricsJson;
    std::string csv;
    std::int64_t counterexamples = 0;
};

std::string
csvOf(const core::ExperimentDb &db, const char *tag)
{
    const std::string path =
        std::string(::testing::TempDir()) + "scamv_hotpath_" + tag +
        ".csv";
    EXPECT_TRUE(db.exportCsv(path));
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    std::remove(path.c_str());
    return text.str();
}

/** PcAndLine campaign: exercises solveWith on the live solver. */
core::PipelineConfig
lineCampaign()
{
    core::PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::Stride;
    cfg.model = obs::ModelKind::Mpart;
    cfg.refinement = obs::ModelKind::MpartRefined;
    cfg.coverage = core::Coverage::PcAndLine;
    cfg.programs = 4;
    cfg.testsPerProgram = 4;
    cfg.seed = 7;
    cfg.deterministicMetricsTiming = true;
    return cfg;
}

/** Pc campaign with training: exercises plain solve + solveOnce. */
core::PipelineConfig
pcCampaign()
{
    core::PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    cfg.programs = 4;
    cfg.testsPerProgram = 5;
    cfg.seed = 42;
    cfg.deterministicMetricsTiming = true;
    return cfg;
}

Artifacts
runArtifacts(core::PipelineConfig cfg, smt::SolverMode mode,
             int threads, const char *tag,
             qcache::QueryCache *qc = nullptr)
{
    core::ExperimentDb db;
    cfg.solverMode = mode;
    cfg.threads = threads;
    cfg.queryCache = qc;
    cfg.database = &db;
    const core::RunStats stats = core::Pipeline(cfg).run();
    return {metrics::toJson(stats.metrics), csvOf(db, tag),
            stats.counterexamples};
}

constexpr smt::SolverMode kModes[] = {smt::SolverMode::Oneshot,
                                      smt::SolverMode::Incremental,
                                      smt::SolverMode::Portfolio};

TEST(SolverModeEquivalence, LineCoverageAcrossModesAndThreads)
{
    const Artifacts ref = runArtifacts(
        lineCampaign(), smt::SolverMode::Incremental, 1, "line_ref");
    EXPECT_FALSE(ref.csv.empty());
    for (smt::SolverMode mode : kModes) {
        for (int threads : {1, 4}) {
            const Artifacts got = runArtifacts(lineCampaign(), mode,
                                               threads, "line");
            EXPECT_EQ(got.metricsJson, ref.metricsJson)
                << smt::solverModeName(mode) << " x" << threads;
            EXPECT_EQ(got.csv, ref.csv)
                << smt::solverModeName(mode) << " x" << threads;
            EXPECT_EQ(got.counterexamples, ref.counterexamples);
        }
    }
}

TEST(SolverModeEquivalence, PcCoverageColdAndWarmCache)
{
    // Two references: cached and uncached campaigns differ in their
    // metric tick sequences (the cache layer makes its own clock
    // observations), so each configuration is compared against a
    // reference of the same kind — the repo invariant is cold == warm
    // == any thread count *within* a cache configuration, plus mode
    // equivalence across the board.
    const Artifacts ref = runArtifacts(
        pcCampaign(), smt::SolverMode::Incremental, 1, "pc_ref");
    EXPECT_FALSE(ref.csv.empty());
    qcache::QueryCache ref_qc({8 << 20, ""});
    const Artifacts cref =
        runArtifacts(pcCampaign(), smt::SolverMode::Incremental, 1,
                     "pc_cref", &ref_qc);
    EXPECT_EQ(cref.csv, ref.csv);
    for (smt::SolverMode mode : kModes) {
        // Cold, uncached.
        const Artifacts cold =
            runArtifacts(pcCampaign(), mode, 1, "pc_cold");
        EXPECT_EQ(cold.metricsJson, ref.metricsJson)
            << smt::solverModeName(mode);
        EXPECT_EQ(cold.csv, ref.csv) << smt::solverModeName(mode);

        // Cold through a fresh cache, then warm: the second campaign
        // through the same cache replays every enumeration step from
        // cached entries, at a different thread count.
        qcache::QueryCache qc({8 << 20, ""});
        const Artifacts ccold =
            runArtifacts(pcCampaign(), mode, 1, "pc_ccold", &qc);
        EXPECT_EQ(ccold.metricsJson, cref.metricsJson)
            << smt::solverModeName(mode) << " cached cold";
        EXPECT_EQ(ccold.csv, cref.csv)
            << smt::solverModeName(mode) << " cached cold";
        const Artifacts warm =
            runArtifacts(pcCampaign(), mode, 4, "pc_warm", &qc);
        EXPECT_EQ(warm.metricsJson, cref.metricsJson)
            << smt::solverModeName(mode) << " warm";
        EXPECT_EQ(warm.csv, cref.csv)
            << smt::solverModeName(mode) << " warm";
    }
}

TEST(SolverModeEquivalence, FaultInjectionAllSites)
{
    // SCAMV_FAULT_PLAN=all equivalent: every site armed.  Injected
    // Unknowns leave solver state untouched, so they are neither
    // recorded in oneshot op logs nor rescued by the portfolio scout
    // — the three modes must replay the fault campaign byte-
    // identically at any thread count.
    faults::FaultPlan plan;
    plan.rate = 0.3;
    plan.mask = faults::FaultPlan::maskAll();

    core::PipelineConfig base = pcCampaign();
    base.faultPlan = plan;
    base.retryMax = 2;

    const Artifacts ref = runArtifacts(
        base, smt::SolverMode::Incremental, 1, "fault_ref");
    for (smt::SolverMode mode : kModes) {
        for (int threads : {1, 4}) {
            const Artifacts got =
                runArtifacts(base, mode, threads, "fault");
            EXPECT_EQ(got.metricsJson, ref.metricsJson)
                << smt::solverModeName(mode) << " x" << threads;
            EXPECT_EQ(got.csv, ref.csv)
                << smt::solverModeName(mode) << " x" << threads;
        }
    }
}

TEST(SolverModeEquivalence, LineCoverageFaultCampaign)
{
    faults::FaultPlan plan;
    plan.rate = 0.3;
    plan.mask = faults::FaultPlan::maskAll();

    core::PipelineConfig base = lineCampaign();
    base.faultPlan = plan;
    base.retryMax = 2;

    const Artifacts ref = runArtifacts(
        base, smt::SolverMode::Incremental, 1, "lfault_ref");
    for (smt::SolverMode mode : kModes) {
        const Artifacts got = runArtifacts(base, mode, 4, "lfault");
        EXPECT_EQ(got.metricsJson, ref.metricsJson)
            << smt::solverModeName(mode);
        EXPECT_EQ(got.csv, ref.csv) << smt::solverModeName(mode);
    }
}

// ---------------------------------------------------------------------
// Batched simulation

TEST(BatchedSimulation, OnOffByteIdentical)
{
    auto run = [](int sim_batch, const char *tag) {
        core::PipelineConfig cfg = lineCampaign();
        cfg.platform.simBatch = sim_batch;
        return runArtifacts(cfg, smt::SolverMode::Incremental, 1,
                            tag);
    };
    const Artifacts off = run(0, "batch_off");
    const Artifacts on = run(1, "batch_on");
    EXPECT_FALSE(off.csv.empty());
    EXPECT_EQ(off.metricsJson, on.metricsJson);
    EXPECT_EQ(off.csv, on.csv);
}

TEST(BatchedSimulation, BatchedFaultCampaignMatchesUnbatched)
{
    faults::FaultPlan plan;
    plan.rate = 0.3;
    plan.mask = faults::FaultPlan::maskAll();
    auto run = [&](int sim_batch, const char *tag) {
        core::PipelineConfig cfg = pcCampaign();
        cfg.faultPlan = plan;
        cfg.retryMax = 2;
        cfg.platform.simBatch = sim_batch;
        return runArtifacts(cfg, smt::SolverMode::Incremental, 1,
                            tag);
    };
    const Artifacts off = run(0, "fbatch_off");
    const Artifacts on = run(1, "fbatch_on");
    EXPECT_EQ(off.metricsJson, on.metricsJson);
    EXPECT_EQ(off.csv, on.csv);
}

} // namespace
} // namespace scamv
