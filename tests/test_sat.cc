/** @file Unit tests for the CDCL SAT solver. */

#include <gtest/gtest.h>

#include "sat/solver.hh"
#include "support/rng.hh"

namespace scamv::sat {
namespace {

TEST(Sat, EmptyFormulaIsSat)
{
    Solver s;
    EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Sat, UnitClause)
{
    Solver s;
    Var v = s.newVar();
    EXPECT_TRUE(s.addUnit(mkLit(v)));
    EXPECT_EQ(s.solve(), Result::Sat);
    EXPECT_TRUE(s.modelValue(v));
}

TEST(Sat, ContradictoryUnitsAreUnsat)
{
    Solver s;
    Var v = s.newVar();
    EXPECT_TRUE(s.addUnit(mkLit(v)));
    EXPECT_FALSE(s.addUnit(~mkLit(v)));
    EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Sat, SimpleImplicationChain)
{
    Solver s;
    Var a = s.newVar(), b = s.newVar(), c = s.newVar();
    // a, a->b, b->c
    s.addUnit(mkLit(a));
    s.addBinary(~mkLit(a), mkLit(b));
    s.addBinary(~mkLit(b), mkLit(c));
    ASSERT_EQ(s.solve(), Result::Sat);
    EXPECT_TRUE(s.modelValue(a));
    EXPECT_TRUE(s.modelValue(b));
    EXPECT_TRUE(s.modelValue(c));
}

TEST(Sat, TautologicalClauseIgnored)
{
    Solver s;
    Var a = s.newVar();
    EXPECT_TRUE(s.addBinary(mkLit(a), ~mkLit(a)));
    EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Sat, DuplicateLiteralsDeduplicated)
{
    Solver s;
    Var a = s.newVar();
    EXPECT_TRUE(s.addClause({mkLit(a), mkLit(a), mkLit(a)}));
    ASSERT_EQ(s.solve(), Result::Sat);
    EXPECT_TRUE(s.modelValue(a));
}

TEST(Sat, PigeonholeTwoInOneIsUnsat)
{
    // 2 pigeons, 1 hole.
    Solver s;
    Var p00 = s.newVar(); // pigeon 0 in hole 0
    Var p10 = s.newVar(); // pigeon 1 in hole 0
    s.addUnit(mkLit(p00));
    s.addUnit(mkLit(p10));
    s.addBinary(~mkLit(p00), ~mkLit(p10));
    EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Sat, PigeonholeFourInThreeIsUnsat)
{
    // Classic PHP(4,3): needs real conflict analysis to refute.
    Solver s;
    const int P = 4, H = 3;
    Var v[4][3];
    for (int p = 0; p < P; ++p)
        for (int h = 0; h < H; ++h)
            v[p][h] = s.newVar();
    for (int p = 0; p < P; ++p) {
        std::vector<Lit> c;
        for (int h = 0; h < H; ++h)
            c.push_back(mkLit(v[p][h]));
        s.addClause(c);
    }
    for (int h = 0; h < H; ++h)
        for (int p1 = 0; p1 < P; ++p1)
            for (int p2 = p1 + 1; p2 < P; ++p2)
                s.addBinary(~mkLit(v[p1][h]), ~mkLit(v[p2][h]));
    EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Sat, XorChainSat)
{
    // x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 0: satisfiable.
    Solver s;
    Var x1 = s.newVar(), x2 = s.newVar(), x3 = s.newVar();
    auto add_xor = [&](Var a, Var b, bool value) {
        if (value) {
            s.addBinary(mkLit(a), mkLit(b));
            s.addBinary(~mkLit(a), ~mkLit(b));
        } else {
            s.addBinary(~mkLit(a), mkLit(b));
            s.addBinary(mkLit(a), ~mkLit(b));
        }
    };
    add_xor(x1, x2, true);
    add_xor(x2, x3, true);
    add_xor(x1, x3, false);
    ASSERT_EQ(s.solve(), Result::Sat);
    EXPECT_NE(s.modelValue(x1), s.modelValue(x2));
    EXPECT_NE(s.modelValue(x2), s.modelValue(x3));
    EXPECT_EQ(s.modelValue(x1), s.modelValue(x3));
}

TEST(Sat, XorChainUnsatParity)
{
    // Odd cycle parity: x1^x2=1, x2^x3=1, x1^x3=1 is unsat.
    Solver s;
    Var x1 = s.newVar(), x2 = s.newVar(), x3 = s.newVar();
    auto add_xor1 = [&](Var a, Var b) {
        s.addBinary(mkLit(a), mkLit(b));
        s.addBinary(~mkLit(a), ~mkLit(b));
    };
    add_xor1(x1, x2);
    add_xor1(x2, x3);
    add_xor1(x1, x3);
    EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Sat, ModelSatisfiesAllClauses)
{
    // Random 3-SAT at low clause density: should be satisfiable and
    // every model returned must satisfy every clause.
    Rng rng(99);
    for (int round = 0; round < 10; ++round) {
        Solver s;
        const int n = 30;
        std::vector<Var> vars;
        for (int i = 0; i < n; ++i)
            vars.push_back(s.newVar());
        std::vector<std::vector<Lit>> clauses;
        for (int c = 0; c < 60; ++c) {
            std::vector<Lit> clause;
            for (int k = 0; k < 3; ++k)
                clause.push_back(
                    mkLit(vars[rng.below(n)], rng.chance(0.5)));
            clauses.push_back(clause);
            s.addClause(clause);
        }
        ASSERT_EQ(s.solve(), Result::Sat) << "round " << round;
        for (const auto &clause : clauses) {
            bool satisfied = false;
            for (Lit l : clause)
                satisfied |= s.modelValue(var(l)) != sign(l);
            EXPECT_TRUE(satisfied);
        }
    }
}

TEST(Sat, AssumptionsDoNotPersist)
{
    Solver s;
    Var a = s.newVar();
    EXPECT_EQ(s.solveAssuming({mkLit(a)}), Result::Sat);
    EXPECT_TRUE(s.modelValue(a));
    EXPECT_EQ(s.solveAssuming({~mkLit(a)}), Result::Sat);
    EXPECT_FALSE(s.modelValue(a));
}

TEST(Sat, ConflictingAssumptionUnsatButInstanceAlive)
{
    Solver s;
    Var a = s.newVar(), b = s.newVar();
    s.addUnit(mkLit(a));
    s.addBinary(~mkLit(a), mkLit(b)); // a -> b
    EXPECT_EQ(s.solveAssuming({~mkLit(b)}), Result::Unsat);
    EXPECT_EQ(s.solve(), Result::Sat); // instance itself still sat
}

TEST(Sat, PhaseSettingBiasesModel)
{
    Solver s;
    Var a = s.newVar();
    // Unconstrained variable takes its saved phase.
    s.setPhase(a, true);
    ASSERT_EQ(s.solve(), Result::Sat);
    EXPECT_TRUE(s.modelValue(a));
}

TEST(Sat, DefaultPhaseIsFalse)
{
    Solver s;
    Var a = s.newVar();
    ASSERT_EQ(s.solve(), Result::Sat);
    EXPECT_FALSE(s.modelValue(a)); // canonical "zero" models
}

TEST(Sat, IncrementalClauseAddition)
{
    Solver s;
    Var a = s.newVar(), b = s.newVar();
    s.addBinary(mkLit(a), mkLit(b));
    ASSERT_EQ(s.solve(), Result::Sat);
    // Block the current model repeatedly; eventually unsat.
    int models = 0;
    while (s.solve() == Result::Sat && models < 10) {
        ++models;
        std::vector<Lit> blocking;
        for (Var v : {a, b})
            blocking.push_back(s.modelValue(v) ? ~mkLit(v) : mkLit(v));
        if (!s.addClause(blocking))
            break;
    }
    EXPECT_GE(models, 2); // at least two distinct models of (a | b)
    EXPECT_LE(models, 3); // exactly three exist
}

TEST(Sat, ConflictBudgetReturnsUnknown)
{
    // A hard instance (PHP(7,6)) with a tiny budget must time out.
    Solver s;
    const int P = 7, H = 6;
    std::vector<std::vector<Var>> v(P, std::vector<Var>(H));
    for (int p = 0; p < P; ++p)
        for (int h = 0; h < H; ++h)
            v[p][h] = s.newVar();
    for (int p = 0; p < P; ++p) {
        std::vector<Lit> c;
        for (int h = 0; h < H; ++h)
            c.push_back(mkLit(v[p][h]));
        s.addClause(c);
    }
    for (int h = 0; h < H; ++h)
        for (int p1 = 0; p1 < P; ++p1)
            for (int p2 = p1 + 1; p2 < P; ++p2)
                s.addBinary(~mkLit(v[p1][h]), ~mkLit(v[p2][h]));
    EXPECT_EQ(s.solve(1), Result::Unknown);
}

TEST(Sat, StatisticsAdvance)
{
    Solver s;
    Var a = s.newVar(), b = s.newVar();
    s.addBinary(mkLit(a), mkLit(b));
    s.addBinary(~mkLit(a), mkLit(b));
    s.addBinary(mkLit(a), ~mkLit(b));
    ASSERT_EQ(s.solve(), Result::Sat);
    EXPECT_GT(s.decisions() + s.propagations(), 0u);
}

} // namespace
} // namespace scamv::sat
