/**
 * @file
 * SC frontend tests: golden AST/BIR snapshots for the example corpus,
 * diagnostic positions and messages for rejected programs, the
 * assemble(toString(p)) == p round-trip property, lowering semantics
 * spot-checks, and a mutation fuzzer over the corpus sources
 * (FrontFuzz.*, scaled by SCAMV_FUZZ_ITERS for the nightly lane).
 *
 * Golden files live in tests/golden/<kernel>.{ast,bir}.  To refresh
 * them after an intentional frontend change:
 *
 *     for f in examples/corpus/[a-z]*.sc; do n=$(basename $f .sc);
 *       build/src/front/scamv-fc --emit-ast $f > tests/golden/$n.ast;
 *       build/src/front/scamv-fc --emit-bir $f > tests/golden/$n.bir;
 *     done
 */

#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bir/asm.hh"
#include "front/front.hh"
#include "support/env.hh"

using namespace scamv;

namespace {

const char *const kKernels[] = {
    "branchy_parser", "ct_select", "memcmp_early", "sbox",
    "stride_walker",
};

std::string
repoPath(const std::string &rel)
{
    return std::string(SCAMV_REPO_ROOT) + "/" + rel;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    EXPECT_TRUE(in) << "unreadable: " << path;
    return ss.str();
}

/** Compile a source string; fail the test on diagnostics. */
front::CompiledProgram
mustCompile(const std::string &src, const std::string &name = "t")
{
    front::CompileResult res = front::compile(src, name);
    EXPECT_TRUE(res.ok())
        << (res.error ? res.error->render(name) : "no diagnostic");
    return std::move(*res.compiled);
}

/** Expect a diagnostic containing `needle` at line/col. */
void
expectDiag(const std::string &src, const std::string &needle,
           int line, int col)
{
    const front::CompileResult res = front::compile(src, "t");
    ASSERT_FALSE(res.ok()) << "expected diagnostic '" << needle
                           << "' but source compiled: " << src;
    ASSERT_TRUE(res.error.has_value());
    EXPECT_NE(res.error->message.find(needle), std::string::npos)
        << "got: " << res.error->message;
    EXPECT_EQ(res.error->pos.line, line) << res.error->message;
    EXPECT_EQ(res.error->pos.col, col) << res.error->message;
}

} // namespace

// ---------------------------------------------------------------
// Lexer

TEST(FrontLex, TokensAndPositions)
{
    const front::LexResult res = front::lex("x = arr[i] << 0x1f;\n");
    ASSERT_TRUE(res.ok());
    std::vector<std::string> texts;
    for (const front::Token &t : res.tokens)
        texts.push_back(t.text);
    const std::vector<std::string> want = {
        "x", "=", "arr", "[", "i", "]", "<<", "0x1f", ";", ""};
    EXPECT_EQ(texts, want);
    EXPECT_EQ(res.tokens[0].pos.line, 1);
    EXPECT_EQ(res.tokens[0].pos.col, 1);
    EXPECT_EQ(res.tokens[7].pos.col, 15);
    EXPECT_EQ(res.tokens[7].value, 0x1fu);
    EXPECT_EQ(res.tokens.back().kind, front::TokKind::End);
}

TEST(FrontLex, CommentsAndErrors)
{
    EXPECT_TRUE(front::lex("// only a comment\n").ok());
    const front::LexResult bad = front::lex("\n  x = $;\n");
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.error->message.find("unexpected character"),
              std::string::npos);
    EXPECT_EQ(bad.error->pos.line, 2);
    EXPECT_EQ(bad.error->pos.col, 7);
    const front::LexResult num = front::lex("x = 0x1g;\n");
    ASSERT_FALSE(num.ok());
    EXPECT_NE(num.error->message.find("invalid numeric literal"),
              std::string::npos);
}

// ---------------------------------------------------------------
// Golden snapshots

TEST(FrontGolden, CorpusAstSnapshots)
{
    for (const char *kernel : kKernels) {
        const std::string src = readFile(
            repoPath("examples/corpus/" + std::string(kernel) + ".sc"));
        const front::ParseResult parsed = front::parse(src);
        ASSERT_TRUE(parsed.ok())
            << kernel << ": " << parsed.error->render(kernel);
        EXPECT_EQ(front::dumpAst(parsed.unit),
                  readFile(repoPath("tests/golden/" +
                                    std::string(kernel) + ".ast")))
            << "AST snapshot drift for " << kernel
            << " (see header for the refresh recipe)";
    }
}

TEST(FrontGolden, CorpusBirSnapshots)
{
    for (const char *kernel : kKernels) {
        const std::string src = readFile(
            repoPath("examples/corpus/" + std::string(kernel) + ".sc"));
        const front::CompiledProgram cp = mustCompile(src, kernel);
        EXPECT_EQ(cp.program.toString(),
                  readFile(repoPath("tests/golden/" +
                                    std::string(kernel) + ".bir")))
            << "BIR snapshot drift for " << kernel
            << " (see header for the refresh recipe)";
    }
}

// ---------------------------------------------------------------
// Diagnostics (message + position)

TEST(FrontDiag, UndeclaredIdentifier)
{
    expectDiag("u64 x;\nx = y + 1;\n",
               "use of undeclared identifier 'y'", 2, 5);
}

TEST(FrontDiag, TypeErrors)
{
    expectDiag("u64 a[4];\nu64 x;\nx = a;\n",
               "'a' is an array; subscript it", 3, 5);
    expectDiag("u64 x;\nu64 y;\ny = x[0];\n",
               "'x' is a scalar, not an array", 3, 5);
    expectDiag("u64 x;\nu64 x;\n", "duplicate declaration of 'x'", 2,
               1);
    expectDiag("u64 a[0];\n", "array 'a' must have positive size", 1,
               1);
}

TEST(FrontDiag, UnboundedLoop)
{
    expectDiag("u64 i;\nu64 n;\nfor (i = 0; i < n; i = i + 1) { }\n",
               "unbounded loop: for header of 'i' must use constant "
               "expressions",
               3, 1);
}

TEST(FrontDiag, UnrollBudgetNamesEnvKnob)
{
    const std::string src = "u64 i;\nu64 acc;\n"
                            "for (i = 0; i < 100000; i = i + 1) "
                            "{ acc = acc + i; }\n";
    const front::CompileResult res = front::compile(src, "t");
    ASSERT_FALSE(res.ok());
    EXPECT_NE(res.error->message.find("exceeds unroll budget"),
              std::string::npos);
    EXPECT_NE(res.error->message.find("SCAMV_UNROLL_BUDGET"),
              std::string::npos);
    // An explicit budget overrides the env default.
    front::CompileOptions opts;
    opts.unrollBudget = 1000000;
    EXPECT_TRUE(front::compile(src, "t", opts).ok());
}

TEST(FrontDiag, RegisterAllocationExceeded)
{
    // 33 scalars cannot fit in x0..x31.
    std::string src;
    for (int i = 0; i < 33; ++i)
        src += "u64 v" + std::to_string(i) + ";\n";
    const front::CompileResult res = front::compile(src, "t");
    ASSERT_FALSE(res.ok());
    EXPECT_NE(res.error->message.find(
                  "register allocation exceeded x31"),
              std::string::npos);
}

TEST(FrontDiag, ParseErrorsCarryPositions)
{
    expectDiag("u64 x\nu64 y;\n", "expected ';'", 2, 1);
    expectDiag("u64 x;\nx = ;\n", "expected expression", 2, 5);
    expectDiag("u64 i;\nfor (i = 0; j < 4; i = i + 1) { }\n",
               "for condition must test loop variable 'i'", 2, 13);
    expectDiag("u64 i;\nu64 j;\nfor (i = 0; i < 4; j = j + 1) { }\n",
               "for step must update loop variable 'i'", 3, 20);
}

TEST(FrontDiag, DiagnosticRenderFormat)
{
    front::Diagnostic d;
    d.pos = {3, 7};
    d.message = "boom";
    EXPECT_EQ(d.render("k.sc"), "k.sc:3:7: error: boom");
}

// ---------------------------------------------------------------
// Lowering semantics

TEST(FrontLower, SecretPublicPartition)
{
    const front::CompiledProgram cp = mustCompile(
        "secret u64 k;\npublic u64 p;\nu64 t;\n"
        "public u64 tab[8];\nsecret u64 key[2];\n"
        "t = tab[k & 7] + p;\n");
    // Scalars get registers in declaration order from x0; unqualified
    // scalars are zeroed locals, not pinned inputs.
    EXPECT_EQ(cp.secretRegs, (std::vector<bir::Reg>{0}));
    EXPECT_EQ(cp.publicRegs, (std::vector<bir::Reg>{1}));
    ASSERT_EQ(cp.arrays.size(), 2u);
    EXPECT_EQ(cp.arrays[0].name, "tab");
    EXPECT_EQ(cp.arrays[0].base % 64, 0u);
    EXPECT_EQ(cp.arrays[1].name, "key");
    // Only the public array's words are pinned low across the pair.
    EXPECT_EQ(cp.publicMemAddrs.size(), 8u);
    for (std::uint64_t a : cp.publicMemAddrs)
        EXPECT_EQ((a - cp.arrays[0].base) % 8, 0u);
    EXPECT_TRUE(cp.program.validate().empty());
}

TEST(FrontLower, ForUnrollFoldsConstants)
{
    const front::CompiledProgram cp = mustCompile(
        "u64 i;\nu64 acc;\n"
        "for (i = 2; i < 8; i = i + 3) { acc = acc + i; }\n");
    // movImm to i (x0): entry zero-init, iterations i = 2 and i = 5,
    // then the post-loop value 8 — the loop is fully unrolled.
    int movs_to_i = 0;
    std::uint64_t last = 0;
    for (const bir::Instr &ins : cp.program.instrs())
        if (ins.kind == bir::InstrKind::MovImm && ins.rd == 0) {
            ++movs_to_i;
            last = ins.imm;
        }
    EXPECT_EQ(movs_to_i, 4);
    EXPECT_EQ(last, 8u);
    EXPECT_EQ(cp.program.branchCount(), 0);
}

TEST(FrontLower, IfLowersToFusedCompareAndBranch)
{
    const front::CompiledProgram cp = mustCompile(
        "secret u64 s;\nu64 x;\n"
        "if (s < 8) { x = 1; } else { x = 2; }\n");
    EXPECT_EQ(cp.program.branchCount(), 1);
    bool has_jump = false;
    for (const bir::Instr &ins : cp.program.instrs())
        has_jump |= ins.kind == bir::InstrKind::Jump;
    EXPECT_TRUE(has_jump);
    EXPECT_TRUE(cp.program.validate().empty());
}

// ---------------------------------------------------------------
// Round-trip through bir/asm (the --emit-bir contract)

TEST(FrontRoundTrip, CorpusKernelsRoundTripThroughAsm)
{
    for (const char *kernel : kKernels) {
        const std::string src = readFile(
            repoPath("examples/corpus/" + std::string(kernel) + ".sc"));
        const front::CompiledProgram cp = mustCompile(src, kernel);
        const bir::AsmResult back =
            bir::assemble(cp.program.toString(), kernel);
        ASSERT_TRUE(back.ok()) << kernel << ": " << back.error;
        EXPECT_EQ(back.program, cp.program) << kernel;
    }
}

TEST(FrontRoundTrip, RandomProgramsRoundTripThroughAsm)
{
    // Property: every program the lowerer can emit survives
    // assemble(toString(p)) == p.  Random SC programs drawn from the
    // full statement grammar.
    const long iters =
        envLong("SCAMV_FUZZ_ITERS", 1, 1000000).value_or(50);
    std::mt19937_64 rng(0xf07u);
    for (long it = 0; it < iters; ++it) {
        std::ostringstream src;
        src << "secret u64 k;\nu64 x;\nu64 i;\npublic u64 a[8];\n";
        const int stmts = 1 + static_cast<int>(rng() % 4);
        for (int s = 0; s < stmts; ++s) {
            switch (rng() % 4) {
              case 0:
                src << "x = (x + " << rng() % 16 << ") & k;\n";
                break;
              case 1:
                src << "x = a[(x ^ " << rng() % 8 << ") & 7];\n";
                break;
              case 2:
                src << "if (x < " << rng() % 9
                    << ") { x = x + 1; } else { a[x & 7] = k; }\n";
                break;
              default:
                src << "for (i = 0; i < " << 1 + rng() % 3
                    << "; i = i + 1) { x = x + a[i & 7]; }\n";
                break;
            }
        }
        const front::CompiledProgram cp =
            mustCompile(src.str(), "rand");
        const bir::AsmResult back =
            bir::assemble(cp.program.toString(), "rand");
        ASSERT_TRUE(back.ok())
            << back.error << "\nsource:\n"
            << src.str();
        EXPECT_EQ(back.program, cp.program) << src.str();
    }
}

// ---------------------------------------------------------------
// Corpus loader

TEST(FrontCorpus, LoadsDirectorySortedAndFromEnv)
{
    const std::vector<front::CompiledProgram> corpus =
        front::loadCorpusDir(repoPath("examples/corpus"));
    ASSERT_EQ(corpus.size(), 5u);
    // Deterministic order: sorted by filename.
    for (std::size_t i = 0; i < corpus.size(); ++i)
        EXPECT_EQ(corpus[i].name, kKernels[i]);

    setenv("SCAMV_CORPUS_DIR", repoPath("examples/corpus").c_str(),
           1);
    EXPECT_EQ(front::corpusFromEnv().size(), 5u);
    unsetenv("SCAMV_CORPUS_DIR");

    setenv("SCAMV_PROGRAM_FILE",
           repoPath("examples/corpus/sbox.sc").c_str(), 1);
    const auto single = front::corpusFromEnv();
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(single[0].name, "sbox");
    unsetenv("SCAMV_PROGRAM_FILE");

    EXPECT_TRUE(front::corpusFromEnv().empty());
    EXPECT_TRUE(
        front::loadCorpusDir("/nonexistent/corpus").empty());
}

// ---------------------------------------------------------------
// Mutation fuzzing (nightly lane scales SCAMV_FUZZ_ITERS)

TEST(FrontFuzz, MutatedCorpusNeverCrashes)
{
    // Random byte-level mutations of real kernels: the frontend must
    // either compile the mutant or return a positioned diagnostic —
    // never crash, hang, or emit an invalid program.
    std::vector<std::string> sources;
    for (const char *kernel : kKernels)
        sources.push_back(readFile(
            repoPath("examples/corpus/" + std::string(kernel) +
                     ".sc")));
    const long iters =
        envLong("SCAMV_FUZZ_ITERS", 1, 1000000).value_or(200);
    std::mt19937_64 rng(0xc0ffee);
    const std::string alphabet =
        "abkxyz0189[](){};=+-*&|^<>! \n\tsecretpublicu64for";
    for (long it = 0; it < iters; ++it) {
        std::string src = sources[rng() % sources.size()];
        const int edits = 1 + static_cast<int>(rng() % 8);
        for (int e = 0; e < edits && !src.empty(); ++e) {
            const std::size_t at = rng() % src.size();
            switch (rng() % 3) {
              case 0:
                src[at] = alphabet[rng() % alphabet.size()];
                break;
              case 1:
                src.erase(at, 1 + rng() % 3);
                break;
              default:
                src.insert(at, 1,
                           alphabet[rng() % alphabet.size()]);
                break;
            }
        }
        const front::CompileResult res = front::compile(src, "fuzz");
        if (res.ok()) {
            EXPECT_TRUE(res.compiled->program.validate().empty())
                << "invalid program from:\n"
                << src;
        } else {
            ASSERT_TRUE(res.error.has_value());
            EXPECT_FALSE(res.error->message.empty());
            EXPECT_GE(res.error->pos.line, 1);
            EXPECT_GE(res.error->pos.col, 1);
        }
    }
}

TEST(FrontFuzz, DeepNestingIsRejectedNotOverflowed)
{
    // Pathological nesting must hit the depth guard, not the stack.
    std::string deep = "u64 x;\nx = ";
    for (int i = 0; i < 2000; ++i)
        deep += "(";
    deep += "1";
    for (int i = 0; i < 2000; ++i)
        deep += ")";
    deep += ";\n";
    const front::CompileResult res = front::compile(deep, "deep");
    ASSERT_FALSE(res.ok());
    EXPECT_NE(res.error->message.find("nested too deeply"),
              std::string::npos);

    std::string stmts = "u64 x;\n";
    for (int i = 0; i < 2000; ++i)
        stmts += "if (x < 1) { ";
    stmts += "x = 1;";
    for (int i = 0; i < 2000; ++i)
        stmts += " }";
    stmts += "\n";
    const front::CompileResult res2 = front::compile(stmts, "deep");
    ASSERT_FALSE(res2.ok());
    EXPECT_NE(res2.error->message.find("nested too deeply"),
              std::string::npos);
}
