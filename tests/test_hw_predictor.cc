/** @file Unit tests for the PHT branch predictor. */

#include <gtest/gtest.h>

#include "hw/predictor.hh"

namespace scamv::hw {
namespace {

TEST(Predictor, InitiallyWeaklyNotTaken)
{
    BranchPredictor bp;
    EXPECT_FALSE(bp.predict(0));
    EXPECT_FALSE(bp.predict(12345));
}

TEST(Predictor, TrainsTowardTaken)
{
    BranchPredictor bp;
    bp.update(7, true);
    EXPECT_TRUE(bp.predict(7)); // counter 1 -> 2: predict taken
}

TEST(Predictor, SaturatesAndIsSticky)
{
    BranchPredictor bp;
    for (int i = 0; i < 10; ++i)
        bp.update(7, true);
    // One not-taken outcome does not flip a saturated counter.
    bp.update(7, false);
    EXPECT_TRUE(bp.predict(7));
    bp.update(7, false);
    bp.update(7, false);
    EXPECT_FALSE(bp.predict(7));
}

TEST(Predictor, IndependentEntriesForDistantPcs)
{
    BranchPredictor bp;
    for (int i = 0; i < 4; ++i)
        bp.update(1, true);
    EXPECT_TRUE(bp.predict(1));
    EXPECT_FALSE(bp.predict(2)); // different entry untouched
}

TEST(Predictor, ResetRestoresInitialState)
{
    BranchPredictor bp;
    for (int i = 0; i < 4; ++i)
        bp.update(1, true);
    bp.reset();
    EXPECT_FALSE(bp.predict(1));
}

TEST(Predictor, InitialCounterConfigurable)
{
    PredictorConfig cfg;
    cfg.initialCounter = 3; // strongly taken
    BranchPredictor bp(cfg);
    EXPECT_TRUE(bp.predict(42));
}

TEST(Predictor, MispredictCounter)
{
    BranchPredictor bp;
    EXPECT_EQ(bp.mispredicts(), 0u);
    bp.noteMispredict();
    bp.noteMispredict();
    EXPECT_EQ(bp.mispredicts(), 2u);
}

TEST(Predictor, MistrainingScenario)
{
    // The harness protocol (Section 5.3): train not-taken several
    // times, then a taken branch mispredicts, and stays mispredicted
    // for the second measured run too (2-bit hysteresis).
    BranchPredictor bp;
    const std::uint64_t pc = 3;
    for (int i = 0; i < 4; ++i)
        bp.update(pc, false); // training runs take the other path
    EXPECT_FALSE(bp.predict(pc)); // s1's taken branch mispredicts
    bp.update(pc, true);
    EXPECT_FALSE(bp.predict(pc)); // s2 still mispredicts
    bp.update(pc, true);
}

} // namespace
} // namespace scamv::hw
