/** @file Tests for the metrics registry and campaign observability. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/pipeline.hh"
#include "support/metrics.hh"
#include "support/thread_pool.hh"

namespace scamv::metrics {
namespace {

// ---- Primitives ----------------------------------------------------

TEST(Metrics, CounterBasics)
{
    Registry reg;
    Counter &c = reg.counter("c");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    // Lookup by name returns the same counter.
    EXPECT_EQ(&reg.counter("c"), &c);
    EXPECT_NE(&reg.counter("other"), &c);
}

TEST(Metrics, GaugeSetAndAdd)
{
    Registry reg;
    Gauge &g = reg.gauge("g");
    g.set(1.5);
    EXPECT_DOUBLE_EQ(g.value(), 1.5);
    g.add(2.0);
    EXPECT_DOUBLE_EQ(g.value(), 3.5);
    g.set(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Metrics, HistogramBucketingEdgeCases)
{
    Registry reg;
    Histogram &h = reg.histogram("h", {1.0, 2.0, 4.0});
    // bounds.size() + 1 buckets, all empty.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(h.bucketCount(i), 0u);

    h.observe(0.5);  // below first bound -> bucket 0
    h.observe(1.0);  // exactly on a bound -> inclusive upper: bucket 0
    h.observe(1.01); // just above -> bucket 1
    h.observe(2.0);  // bucket 1
    h.observe(4.0);  // bucket 2
    h.observe(4.01); // above last bound -> overflow bucket 3
    h.observe(1e30); // far overflow -> bucket 3

    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 2u);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.01 + 2.0 + 4.0 + 4.01 + 1e30);
}

TEST(Metrics, QuantileEdgeCases)
{
    // Empty histogram: every quantile is 0 by convention.
    HistogramData empty;
    empty.bounds = {1.0, 2.0};
    empty.counts = {0, 0, 0};
    EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);
    // Degenerate: no bounds at all.
    HistogramData bare;
    EXPECT_DOUBLE_EQ(bare.quantile(0.5), 0.0);

    // Single sample in bucket (1, 2]: q=0 interpolates to the bucket
    // floor, q=1 to its ceiling.
    HistogramData single;
    single.bounds = {1.0, 2.0};
    single.counts = {0, 1, 0};
    single.sum = 1.5;
    single.count = 1;
    EXPECT_DOUBLE_EQ(single.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(single.quantile(1.0), 2.0);

    // Samples in the overflow bucket clamp to the last finite bound.
    HistogramData overflow;
    overflow.bounds = {1.0, 2.0};
    overflow.counts = {0, 0, 3};
    overflow.count = 3;
    EXPECT_DOUBLE_EQ(overflow.quantile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(overflow.quantile(1.0), 2.0);
}

TEST(Metrics, HistogramBoundsMustAgreeOnReLookup)
{
    Registry reg;
    reg.histogram("h", {1.0, 2.0});
    // Same bounds: fine, same object.
    Histogram &again = reg.histogram("h", {1.0, 2.0});
    EXPECT_EQ(again.bounds().size(), 2u);
    EXPECT_DEATH(reg.histogram("h", {3.0}), "");
}

// ---- Thread safety -------------------------------------------------

TEST(Metrics, ConcurrentIncrementsFromThreadPool)
{
    Registry reg;
    constexpr int kTasks = 64;
    constexpr int kPerTask = 1000;
    {
        ThreadPool pool(8);
        for (int t = 0; t < kTasks; ++t) {
            pool.submit([&reg] {
                for (int i = 0; i < kPerTask; ++i) {
                    reg.counter("shared").inc();
                    reg.gauge("accum").add(1.0);
                    reg.histogram("lat").observe(1e-5);
                }
            });
        }
        pool.wait();
    }
    const Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("shared"),
              static_cast<std::uint64_t>(kTasks) * kPerTask);
    EXPECT_DOUBLE_EQ(snap.gauges.at("accum"), double(kTasks) * kPerTask);
    EXPECT_EQ(snap.histograms.at("lat").count,
              static_cast<std::uint64_t>(kTasks) * kPerTask);
}

TEST(Metrics, ScopedRegistryIsPerThread)
{
    Registry task_reg;
    {
        ScopedRegistry scoped(task_reg);
        current().counter("seen").inc();
        // Another thread without a scope reports to the global
        // registry, not to this thread's override.
        const std::uint64_t global0 =
            Registry::global().snapshot().counters.count("seen")
                ? Registry::global().snapshot().counters.at("seen")
                : 0;
        ThreadPool pool(1);
        pool.submit([] { current().counter("seen").inc(); });
        pool.wait();
        EXPECT_EQ(task_reg.counter("seen").value(), 1u);
        EXPECT_EQ(Registry::global().counter("seen").value(),
                  global0 + 1);
    }
    // Scope popped: this thread reports globally again.
    Registry &after = current();
    EXPECT_EQ(&after, &Registry::global());
}

TEST(Metrics, ScopedRegistryNests)
{
    Registry outer, inner;
    ScopedRegistry a(outer);
    EXPECT_EQ(&current(), &outer);
    {
        ScopedRegistry b(inner);
        EXPECT_EQ(&current(), &inner);
    }
    EXPECT_EQ(&current(), &outer);
}

// ---- Clock modes ---------------------------------------------------

TEST(Metrics, DeterministicClockAdvancesPerCall)
{
    Registry reg(ClockMode::Deterministic);
    const double t1 = reg.now();
    const double t2 = reg.now();
    const double t3 = reg.now();
    EXPECT_DOUBLE_EQ(t2 - t1, 1e-6);
    EXPECT_DOUBLE_EQ(t3 - t2, 1e-6);
}

TEST(Metrics, PhaseTimerRecordsIntoPhaseHistogram)
{
    Registry reg(ClockMode::Deterministic);
    {
        PhaseTimer phase(reg, "demo");
    }
    const Snapshot snap = reg.snapshot();
    const HistogramData &h = snap.histograms.at("phase.demo_seconds");
    EXPECT_EQ(h.count, 1u);
    // Ctor and dtor each read the clock once: exactly one tick.
    EXPECT_DOUBLE_EQ(h.sum, 1e-6);
}

// ---- Snapshots -----------------------------------------------------

TEST(Metrics, SnapshotMergeAddsEverything)
{
    Registry a, b;
    a.counter("c").add(2);
    b.counter("c").add(3);
    b.counter("only_b").inc();
    a.gauge("g").set(1.25);
    b.gauge("g").set(0.25);
    a.histogram("h", {1.0}).observe(0.5);
    b.histogram("h", {1.0}).observe(2.0);

    Snapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.counters.at("c"), 5u);
    EXPECT_EQ(merged.counters.at("only_b"), 1u);
    EXPECT_DOUBLE_EQ(merged.gauges.at("g"), 1.5);
    const HistogramData &h = merged.histograms.at("h");
    EXPECT_EQ(h.count, 2u);
    EXPECT_EQ(h.counts[0], 1u); // 0.5 <= 1.0
    EXPECT_EQ(h.counts[1], 1u); // 2.0 overflows
    EXPECT_DOUBLE_EQ(h.sum, 2.5);
}

TEST(Metrics, JsonIsByteStableAndRoundTripsToDisk)
{
    Registry reg(ClockMode::Deterministic);
    reg.counter("z.last").add(7);
    reg.counter("a.first").inc();
    reg.gauge("mid").set(0.1);
    reg.histogram("lat").observe(2e-6);

    const Snapshot snap = reg.snapshot();
    const std::string json = toJson(snap);
    EXPECT_EQ(json, toJson(snap)); // pure function of the snapshot
    EXPECT_NE(json.find("\"schema\": \"scamv-metrics-v1\""),
              std::string::npos);
    // Sorted key order: "a.first" renders before "z.last".
    EXPECT_LT(json.find("a.first"), json.find("z.last"));

    const std::string path = "test_metrics_out.json";
    ASSERT_TRUE(writeJson(snap, path));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), json);
    std::remove(path.c_str());
}

TEST(Metrics, TableListsEveryMetric)
{
    Registry reg;
    reg.counter("pipeline.experiments").add(12);
    reg.histogram("phase.smt_seconds").observe(0.5);
    const std::string table = toTable(reg.snapshot()).render();
    EXPECT_NE(table.find("pipeline.experiments"), std::string::npos);
    EXPECT_NE(table.find("phase.smt_seconds"), std::string::npos);
}

// ---- Campaign integration ------------------------------------------

core::PipelineConfig
campaignConfig()
{
    core::PipelineConfig cfg;
    cfg.programs = 6;
    cfg.testsPerProgram = 6;
    cfg.seed = 42;
    cfg.deterministicMetricsTiming = true;
    return cfg;
}

TEST(MetricsPipeline, SnapshotPopulatedAndConsistentWithStats)
{
    core::PipelineConfig cfg = campaignConfig();
    cfg.threads = 1;
    const core::RunStats stats = core::Pipeline(cfg).run();

    const auto &c = stats.metrics.counters;
    // The legacy RunStats fields are views of the snapshot.
    EXPECT_EQ(c.at("pipeline.programs"),
              static_cast<std::uint64_t>(stats.programs));
    EXPECT_EQ(c.at("pipeline.experiments"),
              static_cast<std::uint64_t>(stats.experiments));
    // The instrumented layers below all reported in.
    EXPECT_GT(c.at("smt.queries"), 0u);
    EXPECT_GT(c.at("sat.solve_calls"), 0u);
    EXPECT_GT(c.at("hw.runs"), 0u);
    EXPECT_GT(c.at("platform.experiments"), 0u);
    EXPECT_GT(c.at("hw.cache.hits") + c.at("hw.cache.misses"), 0u);
    // Phase histograms cover the whole path, including the merge.
    for (const char *phase :
         {"phase.generate_seconds", "phase.symbolic_exec_seconds",
          "phase.relation_synthesis_seconds", "phase.smt_seconds",
          "phase.hw_run_seconds", "phase.db_merge_seconds"})
        EXPECT_GT(stats.metrics.histograms.at(phase).count, 0u)
            << phase;
    // Derived timing fields come from the phase histograms.
    EXPECT_GT(stats.totalGenSeconds, 0.0);
    EXPECT_GT(stats.totalExeSeconds, 0.0);
}

TEST(MetricsPipeline, JsonByteIdenticalAcrossThreadCounts)
{
    core::PipelineConfig cfg = campaignConfig();

    cfg.threads = 1;
    const core::RunStats serial = core::Pipeline(cfg).run();
    cfg.threads = 4;
    const core::RunStats parallel = core::Pipeline(cfg).run();

    EXPECT_EQ(serial.metrics, parallel.metrics);
    EXPECT_EQ(toJson(serial.metrics), toJson(parallel.metrics));
}

TEST(MetricsPipeline, WallClockCountersStillDeterministic)
{
    // Without the deterministic clock the timings differ, but every
    // counter must still be thread-count independent.
    core::PipelineConfig cfg = campaignConfig();
    cfg.deterministicMetricsTiming = false;

    cfg.threads = 1;
    const core::RunStats serial = core::Pipeline(cfg).run();
    cfg.threads = 4;
    const core::RunStats parallel = core::Pipeline(cfg).run();

    EXPECT_EQ(serial.metrics.counters, parallel.metrics.counters);
}

TEST(MetricsPipeline, ScamvMetricsEnvWritesJson)
{
    const std::string path = "test_metrics_env.json";
    ::setenv("SCAMV_METRICS", path.c_str(), 1);
    core::PipelineConfig cfg = campaignConfig();
    cfg.programs = 2;
    cfg.threads = 1;
    const core::RunStats stats = core::Pipeline(cfg).run();
    ::unsetenv("SCAMV_METRICS");

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), toJson(stats.metrics));
    std::remove(path.c_str());
}

} // namespace
} // namespace scamv::metrics
