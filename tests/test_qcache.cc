/** @file Tests for the semantic SMT query cache (support/qcache). */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/expdb.hh"
#include "core/pipeline.hh"
#include "expr/eval.hh"
#include "expr/expr.hh"
#include "smt/sampler.hh"
#include "smt/solver.hh"
#include "support/faults.hh"
#include "support/metrics.hh"
#include "support/qcache/cached_solve.hh"
#include "support/qcache/qcache.hh"

namespace scamv::qcache {
namespace {

using expr::Expr;

std::uint64_t
globalCounter(const char *name)
{
    return metrics::Registry::global().counter(name).value();
}

std::string
tmpPath(const char *tag)
{
    return ::testing::TempDir() + std::string("scamv_qcache_") + tag +
           ".txt";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// ---------------------------------------------------------------------
// Canonicalization

TEST(Canon, AlphaRenameSameKeyAndFingerprint)
{
    expr::ExprContext a, b;
    const Expr fa =
        a.land(a.eq(a.add(a.bvVar("x"), a.bvVar("y")), a.bv(5)),
               a.ult(a.bvVar("x"), a.bv(4)));
    const Expr fb =
        b.land(b.eq(b.add(b.bvVar("p"), b.bvVar("q")), b.bv(5)),
               b.ult(b.bvVar("p"), b.bv(4)));
    const CanonForm ca = canonicalize(fa);
    const CanonForm cb = canonicalize(fb);
    EXPECT_EQ(ca.key, cb.key);
    EXPECT_EQ(ca.fingerprint, cb.fingerprint);

    // A genuinely different formula must not collide.
    const Expr fc =
        a.land(a.eq(a.add(a.bvVar("x"), a.bvVar("y")), a.bv(6)),
               a.ult(a.bvVar("x"), a.bv(4)));
    EXPECT_FALSE(canonicalize(fc).key == ca.key);
}

TEST(Canon, CommutativeOperandSwapIsAFullHit)
{
    // Alpha indices follow traversal order, so swapping the operands
    // of a commutative node and the roles of the variables yields the
    // same canonical key *and* the same exactness fingerprint.
    expr::ExprContext ctx;
    const Expr x = ctx.bvVar("x");
    const Expr y = ctx.bvVar("y");
    const Expr f1 = ctx.eq(ctx.add(x, y), ctx.bv(5));
    const Expr f2 = ctx.eq(ctx.add(y, x), ctx.bv(5));
    const CanonForm c1 = canonicalize(f1);
    const CanonForm c2 = canonicalize(f2);
    EXPECT_EQ(c1.key, c2.key);
    EXPECT_EQ(c1.fingerprint, c2.fingerprint);
    // The name maps differ (x is v0 in f1, y is v0 in f2) — exactly
    // what makes the shared model replay correctly for both.
    EXPECT_EQ(c1.toCanon.at("x"), "v0");
    EXPECT_EQ(c2.toCanon.at("y"), "v0");
}

TEST(Canon, ShapeDistinctReorderSharesKeyNotFingerprint)
{
    // Reordering operands of *different shape* keeps the semantic
    // key (same cache slot) but changes the fingerprint: the entry is
    // reachable only by formulas that replay the original solver
    // trajectory exactly.  (`add` does not normalize non-constant
    // operand order, so the two sums really are distinct nodes.)
    expr::ExprContext ctx;
    const Expr x = ctx.bvVar("x");
    const Expr y = ctx.bvVar("y");
    const Expr t1 = ctx.mul(x, y);
    const Expr t2 = ctx.bvAnd(x, ctx.bv(7));
    const CanonForm c1 =
        canonicalize(ctx.eq(ctx.add(t1, t2), ctx.bv(5)));
    const CanonForm c2 =
        canonicalize(ctx.eq(ctx.add(t2, t1), ctx.bv(5)));
    EXPECT_EQ(c1.key, c2.key);
    EXPECT_NE(c1.fingerprint, c2.fingerprint);
}

TEST(Canon, ModelTranslationRoundTrips)
{
    expr::ExprContext ctx;
    const Expr f = ctx.land(ctx.eq(ctx.bvVar("addr"), ctx.bv(5)),
                            ctx.boolVar("flag"));
    const CanonForm form = canonicalize(f);

    expr::Assignment orig;
    orig.bvVars["addr"] = 5;
    orig.boolVars["flag"] = true;
    const expr::Assignment canon = toCanonical(form, orig);
    EXPECT_EQ(canon.bvVars.at("v0"), 5u);
    EXPECT_EQ(canon.boolVars.at("b0"), true);
    const expr::Assignment back = toOriginal(form, canon);
    EXPECT_EQ(back.bvVars.at("addr"), 5u);
    EXPECT_EQ(back.boolVars.at("flag"), true);
}

// ---------------------------------------------------------------------
// Cache semantics

TEST(Cache, AlphaRenamedQueriesShareAnEntry)
{
    QueryCache cache({1 << 20, ""});
    expr::ExprContext a, b;
    const Expr fa =
        a.land(a.eq(a.add(a.bvVar("x"), a.bvVar("y")), a.bv(5)),
               a.ult(a.bvVar("x"), a.bv(4)));
    // Same query in another context: renamed and operand-swapped.
    const Expr fb =
        b.land(b.eq(b.add(b.bvVar("q"), b.bvVar("p")), b.bv(5)),
               b.ult(b.bvVar("q"), b.bv(4)));

    const std::uint64_t h0 = globalCounter("qcache.hit");
    const SolveResult r1 = solveOnce(a, fa, 200000, &cache);
    ASSERT_EQ(r1.outcome, smt::Outcome::Sat);
    ASSERT_TRUE(r1.model);
    EXPECT_TRUE(expr::evalBool(fa, *r1.model));
    EXPECT_EQ(cache.size(), 1u);

    const SolveResult r2 = solveOnce(b, fb, 200000, &cache);
    ASSERT_EQ(r2.outcome, smt::Outcome::Sat);
    ASSERT_TRUE(r2.model);
    EXPECT_TRUE(expr::evalBool(fb, *r2.model));
    EXPECT_EQ(globalCounter("qcache.hit"), h0 + 1);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, UnsatResultsAreCached)
{
    QueryCache cache({1 << 20, ""});
    expr::ExprContext ctx;
    const Expr f = ctx.ult(ctx.bvVar("x"), ctx.bv(0)); // x < 0: unsat
    const std::uint64_t h0 = globalCounter("qcache.hit");
    EXPECT_EQ(solveOnce(ctx, f, 200000, &cache).outcome,
              smt::Outcome::Unsat);
    const SolveResult r = solveOnce(ctx, f, 200000, &cache);
    EXPECT_EQ(r.outcome, smt::Outcome::Unsat);
    EXPECT_FALSE(r.model);
    EXPECT_EQ(globalCounter("qcache.hit"), h0 + 1);
}

TEST(Cache, FpConflictRecomputesInsteadOfReplaying)
{
    QueryCache cache({1 << 20, ""});
    expr::ExprContext ctx;
    const Expr x = ctx.bvVar("x");
    const Expr y = ctx.bvVar("y");
    const Expr t1 = ctx.mul(x, y);
    const Expr t2 = ctx.bvAnd(x, ctx.bv(7));
    const Expr f1 = ctx.eq(ctx.add(t1, t2), ctx.bv(5));
    const Expr f2 = ctx.eq(ctx.add(t2, t1), ctx.bv(5));

    ASSERT_EQ(solveOnce(ctx, f1, 200000, &cache).outcome,
              smt::Outcome::Sat);
    const std::uint64_t c0 = globalCounter("qcache.fp_conflict");
    const SolveResult r = solveOnce(ctx, f2, 200000, &cache);
    EXPECT_EQ(r.outcome, smt::Outcome::Sat);
    ASSERT_TRUE(r.model);
    EXPECT_TRUE(expr::evalBool(f2, *r.model));
    EXPECT_EQ(globalCounter("qcache.fp_conflict"), c0 + 1);
    // Keep-first: the semantic cousin never displaces the original.
    EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, CachedModelsAreRevalidatedBeforeUse)
{
    QueryCache cache({1 << 20, ""});
    expr::ExprContext ctx;
    const Expr f = ctx.eq(ctx.bvVar("x"), ctx.bv(5));
    const CanonForm form = canonicalize(f);

    // Plant a poisoned entry (as a damaged persistence file could):
    // right key and fingerprint, wrong model.
    Entry poison;
    poison.sat = true;
    poison.fingerprint = form.fingerprint;
    poison.model.bvVars["v0"] = 6;
    cache.store(solveKey(form, 200000), poison);

    const std::uint64_t d0 = globalCounter("qcache.validation_dropped");
    const SolveResult r = solveOnce(ctx, f, 200000, &cache);
    ASSERT_EQ(r.outcome, smt::Outcome::Sat);
    ASSERT_TRUE(r.model);
    EXPECT_EQ(r.model->bvVars.at("x"), 5u);
    EXPECT_EQ(globalCounter("qcache.validation_dropped"), d0 + 1);

    // The recomputed result replaced the poisoned entry: next query
    // hits and replays the *valid* model.
    const std::uint64_t h0 = globalCounter("qcache.hit");
    const SolveResult r2 = solveOnce(ctx, f, 200000, &cache);
    ASSERT_TRUE(r2.model);
    EXPECT_EQ(r2.model->bvVars.at("x"), 5u);
    EXPECT_EQ(globalCounter("qcache.hit"), h0 + 1);
}

TEST(Cache, EvictionRespectsByteBoundAndLru)
{
    // An empty entry costs 128 estimated bytes: a 300-byte bound
    // holds two entries, never three.
    QueryCache cache({300, ""});
    Entry e;
    e.fingerprint = 7;
    cache.store(Key{1, 1}, e);
    cache.store(Key{2, 2}, e);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_LE(cache.totalBytes(), cache.maxBytes());

    // Touch {1,1} so {2,2} is the least recently used...
    EXPECT_TRUE(cache.lookup(Key{1, 1}, 7).has_value());
    const std::uint64_t e0 = globalCounter("qcache.evict");
    cache.store(Key{3, 3}, e);
    // ...and gets evicted to make room.
    EXPECT_TRUE(cache.contains(Key{1, 1}));
    EXPECT_FALSE(cache.contains(Key{2, 2}));
    EXPECT_TRUE(cache.contains(Key{3, 3}));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_LE(cache.totalBytes(), cache.maxBytes());
    EXPECT_EQ(globalCounter("qcache.evict"), e0 + 1);
}

// ---------------------------------------------------------------------
// Persistence

TEST(Persist, RoundTripReplaysWithoutSolving)
{
    const std::string path = tmpPath("roundtrip");
    std::remove(path.c_str());
    expr::ExprContext ctx;
    const Expr sat_f =
        ctx.land(ctx.eq(ctx.add(ctx.bvVar("x"), ctx.bvVar("y")),
                        ctx.bv(5)),
                 ctx.ult(ctx.bvVar("x"), ctx.bv(4)));
    const Expr unsat_f = ctx.ult(ctx.bvVar("x"), ctx.bv(0));
    {
        QueryCache cache({1 << 20, path});
        ASSERT_EQ(solveOnce(ctx, sat_f, 200000, &cache).outcome,
                  smt::Outcome::Sat);
        ASSERT_EQ(solveOnce(ctx, unsat_f, 200000, &cache).outcome,
                  smt::Outcome::Unsat);
        EXPECT_EQ(cache.size(), 2u);
    }

    QueryCache reloaded({1 << 20, path});
    EXPECT_EQ(reloaded.size(), 2u);
    EXPECT_EQ(reloaded.loadDropped(), 0u);

    const std::uint64_t h0 = globalCounter("qcache.hit");
    const SolveResult r = solveOnce(ctx, sat_f, 200000, &reloaded);
    ASSERT_EQ(r.outcome, smt::Outcome::Sat);
    ASSERT_TRUE(r.model);
    EXPECT_TRUE(expr::evalBool(sat_f, *r.model));
    EXPECT_EQ(solveOnce(ctx, unsat_f, 200000, &reloaded).outcome,
              smt::Outcome::Unsat);
    EXPECT_EQ(globalCounter("qcache.hit"), h0 + 2);
    std::remove(path.c_str());
}

TEST(Persist, CorruptRecordsAreDroppedAndCounted)
{
    const std::string path = tmpPath("corrupt");
    std::remove(path.c_str());
    {
        QueryCache cache({1 << 20, path});
        Entry e;
        e.sat = true;
        e.fingerprint = 9;
        e.model.bvVars["v0"] = 5;
        cache.store(Key{10, 11}, e);
    }
    // Damage the file: garbage, a truncated record, a flipped
    // checksum.
    const std::string good = readFile(path);
    {
        std::ofstream out(path, std::ios::app);
        out << "deadbeef this is not a record\n";
        const std::string valid_line =
            good.substr(good.find('\n') + 1); // first real record
        out << valid_line.substr(0, valid_line.size() / 2) << "\n";
        std::string flipped = valid_line;
        flipped[flipped.size() - 2] =
            flipped[flipped.size() - 2] == '0' ? '1' : '0';
        out << flipped; // ends with its own '\n'
    }

    const std::uint64_t d0 = globalCounter("qcache.load_dropped");
    QueryCache reloaded({1 << 20, path});
    EXPECT_EQ(reloaded.size(), 1u);
    EXPECT_TRUE(reloaded.contains(Key{10, 11}));
    EXPECT_GE(reloaded.loadDropped(), 2u);
    EXPECT_GE(globalCounter("qcache.load_dropped") - d0, 2u);
    std::remove(path.c_str());
}

TEST(Persist, ForeignHeaderDisablesPersistence)
{
    const std::string path = tmpPath("foreign");
    {
        std::ofstream out(path);
        out << "somebody-elses-format-v9\n";
    }
    QueryCache cache({1 << 20, path});
    EXPECT_EQ(cache.size(), 0u);
    Entry e;
    e.fingerprint = 1;
    cache.store(Key{1, 2}, e);
    // The store stayed in memory: the foreign file was not touched.
    EXPECT_EQ(readFile(path), "somebody-elses-format-v9\n");
    std::remove(path.c_str());
}

TEST(Persist, ConfigFromEnv)
{
    unsetenv("SCAMV_QCACHE_MB");
    unsetenv("SCAMV_QCACHE_FILE");
    EXPECT_EQ(QueryCache::configFromEnv().maxBytes, 0u);
    EXPECT_TRUE(QueryCache::configFromEnv().filePath.empty());

    setenv("SCAMV_QCACHE_MB", "4", 1);
    setenv("SCAMV_QCACHE_FILE", "/tmp/q.txt", 1);
    CacheConfig c = QueryCache::configFromEnv();
    EXPECT_EQ(c.maxBytes, std::size_t{4} << 20);
    EXPECT_EQ(c.filePath, "/tmp/q.txt");

    setenv("SCAMV_QCACHE_MB", "not-a-number", 1);
    EXPECT_EQ(QueryCache::configFromEnv().maxBytes, 0u);
    setenv("SCAMV_QCACHE_MB", "1048577", 1); // over the 1 TiB cap
    EXPECT_EQ(QueryCache::configFromEnv().maxBytes, 0u);

    unsetenv("SCAMV_QCACHE_MB");
    unsetenv("SCAMV_QCACHE_FILE");
}

// ---------------------------------------------------------------------
// Fault injection

TEST(Faults, QcacheCorruptSiteDropsRecordsOnLoad)
{
    const std::string path = tmpPath("faultsite");
    std::remove(path.c_str());
    expr::ExprContext ctx;
    const Expr f = ctx.eq(ctx.bvVar("x"), ctx.bv(5));
    const Expr g = ctx.ult(ctx.bvVar("x"), ctx.bv(0));
    {
        QueryCache cache({1 << 20, path});
        solveOnce(ctx, f, 200000, &cache);
        solveOnce(ctx, g, 200000, &cache);
        ASSERT_EQ(cache.size(), 2u);
    }

    faults::FaultPlan plan;
    plan.rate = 1.0;
    plan.mask = 1u << static_cast<int>(faults::Site::QcacheCorrupt);
    faults::Injector inj(plan, 1, 0);
    {
        faults::ScopedInjector scope(inj);
        QueryCache damaged({1 << 20, path});
        // Every persisted record was corrupted before parsing...
        EXPECT_EQ(damaged.size(), 0u);
        EXPECT_EQ(damaged.loadDropped(), 2u);
        // ...and the campaign recomputes instead of failing.
        const SolveResult r = solveOnce(ctx, f, 200000, &damaged);
        ASSERT_EQ(r.outcome, smt::Outcome::Sat);
        EXPECT_EQ(r.model->bvVars.at("x"), 5u);
    }
    EXPECT_EQ(inj.injectedCount(), 2u);

    // Without the injector the same file loads cleanly.
    QueryCache clean({1 << 20, path});
    EXPECT_EQ(clean.size(), 2u);
    std::remove(path.c_str());
}

TEST(Faults, QcacheCorruptSiteIsEnvSelectable)
{
    setenv("SCAMV_FAULT_RATE", "0.5", 1);
    setenv("SCAMV_FAULT_PLAN", "qcache_corrupt", 1);
    const faults::FaultPlan plan = faults::FaultPlan::fromEnv();
    EXPECT_TRUE(plan.enabled());
    EXPECT_TRUE(plan.covers(faults::Site::QcacheCorrupt));
    EXPECT_FALSE(plan.covers(faults::Site::SmtUnknown));
    unsetenv("SCAMV_FAULT_RATE");
    unsetenv("SCAMV_FAULT_PLAN");
}

// ---------------------------------------------------------------------
// Enumeration

TEST(Enumerator, ColdWarmAndUncachedStreamsAgree)
{
    expr::ExprContext ctx;
    const Expr x = ctx.bvVar("x");
    const Expr f = ctx.ult(x, ctx.bv(3));
    const std::vector<Expr> bvars{x};

    // Reference: the pre-cache incremental solver loop.
    std::vector<std::uint64_t> ref;
    {
        smt::SmtSolver solver(ctx, f);
        while (solver.solve(200000) == smt::Outcome::Sat) {
            ref.push_back(solver.model().bvVars.at("x"));
            if (!solver.blockCurrentModel(bvars, 12))
                break;
        }
    }
    ASSERT_EQ(ref.size(), 3u);

    auto drain = [&](CachedEnumerator &en) {
        std::vector<std::uint64_t> out;
        for (int i = 0; i < 8; ++i) {
            const CachedEnumerator::Step s = en.next(200000);
            if (s.outcome != smt::Outcome::Sat)
                break;
            out.push_back(s.model->bvVars.at("x"));
            if (en.dead())
                break;
        }
        return out;
    };

    QueryCache cache({1 << 20, ""});
    CachedEnumerator cold(ctx, f, bvars, 12, &cache);
    const std::vector<std::uint64_t> cold_models = drain(cold);
    EXPECT_EQ(cold_models, ref);

    const std::uint64_t h0 = globalCounter("qcache.hit");
    CachedEnumerator warm(ctx, f, bvars, 12, &cache);
    const std::vector<std::uint64_t> warm_models = drain(warm);
    EXPECT_EQ(warm_models, ref);
    EXPECT_EQ(warm.dead(), cold.dead());
    EXPECT_GE(globalCounter("qcache.hit") - h0, ref.size());

    // The uncached enumerator leg reproduces the same stream.
    CachedEnumerator direct(ctx, f, bvars, 12, nullptr);
    EXPECT_FALSE(direct.usesCache());
    EXPECT_EQ(drain(direct), ref);
}

// ---------------------------------------------------------------------
// Sampler seeding

TEST(Sampler, SeedOracleIsValidatedBeforeUse)
{
    expr::ExprContext ctx;
    const Expr f = ctx.eq(ctx.bvVar("x"), ctx.bv(5));
    smt::SamplerConfig config;

    config.seedOracle = [](Expr) {
        expr::Assignment a;
        a.bvVars["x"] = 5;
        return std::optional<expr::Assignment>(a);
    };
    Rng rng(7);
    const std::uint64_t s0 = globalCounter("smt.sampler.seeded");
    smt::RepairSampler good(ctx, f, rng, config);
    const auto m = good.sample();
    ASSERT_TRUE(m);
    EXPECT_EQ(m->bvVars.at("x"), 5u);
    EXPECT_EQ(globalCounter("smt.sampler.seeded"), s0 + 1);

    config.seedOracle = [](Expr) {
        expr::Assignment a;
        a.bvVars["x"] = 6; // violates the formula
        return std::optional<expr::Assignment>(a);
    };
    const std::uint64_t r0 = globalCounter("smt.sampler.seed_rejected");
    smt::RepairSampler bad(ctx, f, rng, config);
    const auto m2 = bad.sample();
    ASSERT_TRUE(m2); // the stochastic search still finds x == 5
    EXPECT_TRUE(expr::evalBool(f, *m2));
    EXPECT_EQ(globalCounter("smt.sampler.seed_rejected"), r0 + 1);
}

TEST(Sampler, CacheBackedSeedOracleReplaysStoredModels)
{
    QueryCache cache({1 << 20, ""});
    expr::ExprContext ctx;
    const Expr f =
        ctx.land(ctx.eq(ctx.add(ctx.bvVar("x"), ctx.bvVar("y")),
                        ctx.bv(5)),
                 ctx.ult(ctx.bvVar("x"), ctx.bv(4)));
    ASSERT_EQ(solveOnce(ctx, f, 200000, &cache).outcome,
              smt::Outcome::Sat);

    const auto oracle = samplerSeedOracle(&cache, 200000);
    const auto seed = oracle(f);
    ASSERT_TRUE(seed);
    EXPECT_TRUE(expr::evalBool(f, *seed));

    const auto none = samplerSeedOracle(nullptr, 200000)(f);
    EXPECT_FALSE(none);
}

// ---------------------------------------------------------------------
// Campaign-level determinism

core::PipelineConfig
campaignConfig()
{
    core::PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    cfg.programs = 4;
    cfg.testsPerProgram = 5;
    cfg.seed = 42;
    cfg.deterministicMetricsTiming = true;
    return cfg;
}

std::string
runCampaign(const core::PipelineConfig &base, int threads,
            QueryCache *qc, core::ExperimentDb *db)
{
    core::PipelineConfig cfg = base;
    cfg.threads = threads;
    cfg.queryCache = qc;
    cfg.database = db;
    return metrics::toJson(core::Pipeline(cfg).run().metrics);
}

std::string
dbCsv(const core::ExperimentDb &db, const char *tag)
{
    const std::string path = tmpPath(tag);
    EXPECT_TRUE(db.exportCsv(path));
    const std::string text = readFile(path);
    std::remove(path.c_str());
    return text;
}

TEST(Campaign, WarmPersistedCacheIsThreadCountByteIdentical)
{
    const core::PipelineConfig cfg = campaignConfig();
    const std::string path = tmpPath("campaign");
    std::remove(path.c_str());

    core::ExperimentDb db_cold, db_warm1, db_warm4;
    std::string j_cold, j_warm1, j_warm4;
    {
        QueryCache cold({8 << 20, path});
        j_cold = runCampaign(cfg, 1, &cold, &db_cold);
    }
    const std::uint64_t h0 = globalCounter("qcache.hit");
    {
        QueryCache warm({8 << 20, path});
        j_warm1 = runCampaign(cfg, 1, &warm, &db_warm1);
    }
    EXPECT_GT(globalCounter("qcache.hit") - h0, 0u);
    {
        QueryCache warm({8 << 20, path});
        j_warm4 = runCampaign(cfg, 4, &warm, &db_warm4);
    }

    EXPECT_EQ(j_cold, j_warm1);
    EXPECT_EQ(j_warm1, j_warm4);
    EXPECT_EQ(dbCsv(db_cold, "db_cold"), dbCsv(db_warm1, "db_warm1"));
    EXPECT_EQ(dbCsv(db_warm1, "db_warm1b"),
              dbCsv(db_warm4, "db_warm4"));
    std::remove(path.c_str());
}

TEST(Campaign, ResumeAfterTruncatedCheckpointMatchesCold)
{
    const core::PipelineConfig cfg = campaignConfig();
    const std::string path = tmpPath("resume");
    std::remove(path.c_str());

    core::ExperimentDb db_cold, db_resumed;
    std::string j_cold, j_resumed;
    {
        QueryCache cold({8 << 20, path});
        j_cold = runCampaign(cfg, 1, &cold, &db_cold);
    }

    // Simulate a campaign killed mid-write: keep the first half of
    // the checkpoint and cut the last surviving record in two.
    const std::string full = readFile(path);
    {
        std::ofstream out(path, std::ios::trunc);
        out << full.substr(0, full.size() / 2);
    }

    const std::uint64_t d0 = globalCounter("qcache.load_dropped");
    {
        QueryCache resumed({8 << 20, path});
        j_resumed = runCampaign(cfg, 1, &resumed, &db_resumed);
    }
    // The torn record was dropped, not trusted...
    EXPECT_GE(globalCounter("qcache.load_dropped") - d0, 1u);
    // ...and the resumed campaign is byte-identical to the cold one.
    EXPECT_EQ(j_cold, j_resumed);
    EXPECT_EQ(dbCsv(db_cold, "db_cold2"),
              dbCsv(db_resumed, "db_resumed"));
    std::remove(path.c_str());
}

TEST(Campaign, FaultPlansBypassTheCache)
{
    // A fault-injection campaign must not consult the cache (replay
    // would change which sites fire): run() nulls the cache and
    // counts the bypass.
    core::PipelineConfig cfg = campaignConfig();
    cfg.programs = 2;
    cfg.testsPerProgram = 3;
    cfg.faultPlan.rate = 0.05;
    cfg.faultPlan.mask = faults::FaultPlan::maskAll();

    QueryCache cache({8 << 20, ""});
    cfg.queryCache = &cache;
    const std::uint64_t b0 = globalCounter("qcache.bypass_faults");
    core::Pipeline(cfg).run();
    EXPECT_EQ(globalCounter("qcache.bypass_faults"), b0 + 1);
    EXPECT_EQ(cache.size(), 0u);
}

} // namespace
} // namespace scamv::qcache
