/** @file Tests for automatic model repair (Section 8 future work). */

#include <gtest/gtest.h>

#include "core/repair.hh"

namespace scamv::core {
namespace {

RepairConfig
makeConfig(gen::TemplateKind kind, bool train)
{
    RepairConfig config;
    config.campaign.templateKind = kind;
    config.campaign.train = train;
    config.campaign.programs = 8;
    config.campaign.testsPerProgram = 10;
    config.campaign.seed = 555;
    return config;
}

TEST(Repair, LatticesAreMonotone)
{
    using obs::ModelKind;
    EXPECT_EQ(repairLattice(ModelKind::Mct),
              (std::vector<ModelKind>{ModelKind::Mct, ModelKind::Mspec1,
                                      ModelKind::Mspec}));
    EXPECT_EQ(repairLattice(ModelKind::Mpart),
              (std::vector<ModelKind>{ModelKind::Mpart,
                                      ModelKind::MpartRefined}));
    EXPECT_EQ(repairLattice(ModelKind::Mspec),
              (std::vector<ModelKind>{ModelKind::Mspec}));
}

TEST(Repair, MctOnTemplateARepairsToMspec1OrStronger)
{
    // SiSCloak leaks through Mct (single speculative load).  Mspec1
    // observes exactly that first transient load, so the repaired
    // model must be at least Mspec1.
    RepairResult r = repairModel(obs::ModelKind::Mct,
                                 makeConfig(gen::TemplateKind::A, true));
    ASSERT_FALSE(r.attempts.empty());
    EXPECT_EQ(r.attempts[0].model, obs::ModelKind::Mct);
    EXPECT_FALSE(r.attempts[0].sound);
    ASSERT_TRUE(r.repaired.has_value());
    EXPECT_NE(*r.repaired, obs::ModelKind::Mct);
}

TEST(Repair, Mspec1SufficesForTemplateC)
{
    // Template C's transient loads are causally dependent: only the
    // first one issues, so observing it (Mspec1) restores soundness.
    RepairResult r = repairModel(obs::ModelKind::Mct,
                                 makeConfig(gen::TemplateKind::C, true));
    ASSERT_TRUE(r.repaired.has_value());
    EXPECT_EQ(*r.repaired, obs::ModelKind::Mspec1);
}

TEST(Repair, TemplateBNeedsFullMspec)
{
    // Template B generates independent transient loads: Mspec1 is
    // still unsound and the repair must escalate to Mspec.
    RepairConfig cfg = makeConfig(gen::TemplateKind::B, true);
    cfg.campaign.programs = 16; // independent-load programs are a subset
    RepairResult r = repairModel(obs::ModelKind::Mct, cfg);
    ASSERT_TRUE(r.repaired.has_value());
    EXPECT_EQ(*r.repaired, obs::ModelKind::Mspec);
    ASSERT_EQ(r.attempts.size(), 3u);
    EXPECT_FALSE(r.attempts[0].sound); // Mct
    EXPECT_FALSE(r.attempts[1].sound); // Mspec1
    EXPECT_TRUE(r.attempts[2].sound);  // Mspec
}

TEST(Repair, MpartRepairsToMpartRefined)
{
    RepairConfig cfg = makeConfig(gen::TemplateKind::Stride, false);
    cfg.campaign.coverage = Coverage::PcAndLine;
    cfg.campaign.modelParams.attacker.loSet = 61;
    cfg.campaign.platform.visibleLoSet = 61;
    cfg.campaign.platform.visibleHiSet = 127;
    cfg.campaign.programs = 20;
    cfg.campaign.testsPerProgram = 20;
    RepairResult r = repairModel(obs::ModelKind::Mpart, cfg);
    ASSERT_FALSE(r.attempts.empty());
    EXPECT_FALSE(r.attempts[0].sound); // prefetching breaks Mpart
    ASSERT_TRUE(r.repaired.has_value());
    EXPECT_EQ(*r.repaired, obs::ModelKind::MpartRefined);
}

TEST(Repair, AlreadySoundModelNeedsNoRepair)
{
    // On Template D (no conditional branches) Mct has no speculative
    // leakage at all: the original model validates cleanly.
    RepairResult r = repairModel(obs::ModelKind::Mct,
                                 makeConfig(gen::TemplateKind::D,
                                            false));
    ASSERT_TRUE(r.repaired.has_value());
    EXPECT_EQ(*r.repaired, obs::ModelKind::Mct);
    EXPECT_EQ(r.attempts.size(), 1u);
}

TEST(Repair, AttemptsRecordStats)
{
    RepairResult r = repairModel(obs::ModelKind::Mct,
                                 makeConfig(gen::TemplateKind::A, true));
    for (const auto &attempt : r.attempts) {
        // Either experiments ran, or the attempt is flagged vacuous
        // (the refinement adds no observations on this template —
        // e.g. Mspec1 already covers Template A's single body load).
        EXPECT_TRUE(attempt.stats.experiments > 0 || attempt.vacuous);
        EXPECT_EQ(attempt.sound,
                  attempt.stats.counterexamples == 0);
    }
}

} // namespace
} // namespace scamv::core
