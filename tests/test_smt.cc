/** @file Unit tests for the SMT-lite facade (reads, models, blocking). */

#include <gtest/gtest.h>

#include <set>

#include "expr/eval.hh"
#include "smt/solver.hh"

namespace scamv::smt {
namespace {

using expr::Expr;
using expr::ExprContext;

TEST(Smt, TrivialSatAndUnsat)
{
    ExprContext ctx;
    EXPECT_EQ(checkSat(ctx, ctx.tru()), Outcome::Sat);
    EXPECT_EQ(checkSat(ctx, ctx.fls()), Outcome::Unsat);
}

TEST(Smt, ModelSatisfiesFormula)
{
    ExprContext ctx;
    Expr x = ctx.bvVar("x");
    Expr y = ctx.bvVar("y");
    Expr f = ctx.land(ctx.eq(ctx.add(x, y), ctx.bv(100)),
                      ctx.ult(x, ctx.bv(20)));
    SmtSolver s(ctx, f);
    ASSERT_EQ(s.solve(), Outcome::Sat);
    auto model = s.model();
    EXPECT_TRUE(expr::evalBool(f, model));
    EXPECT_EQ(model.bv("x") + model.bv("y"), 100u);
    EXPECT_LT(model.bv("x"), 20u);
}

TEST(Smt, MemoryReadProducesInitialMemory)
{
    ExprContext ctx;
    Expr mem = ctx.memVar("mem_1");
    Expr x = ctx.bvVar("x0_1");
    Expr f = ctx.land(ctx.eq(ctx.read(mem, x), ctx.bv(0xAB)),
                      ctx.eq(x, ctx.bv(0x1000)));
    SmtSolver s(ctx, f);
    ASSERT_EQ(s.solve(), Outcome::Sat);
    auto model = s.model();
    ASSERT_TRUE(model.mems.count("mem_1"));
    EXPECT_EQ(model.mems["mem_1"].load(0x1000), 0xABu);
    EXPECT_TRUE(expr::evalBool(f, model));
}

TEST(Smt, AckermannConsistencySameAddressSameValue)
{
    // read(m, a) != read(m, b) && a == b must be unsat.
    ExprContext ctx;
    Expr mem = ctx.memVar("m");
    Expr a = ctx.bvVar("a");
    Expr b = ctx.bvVar("b");
    Expr f = ctx.land(ctx.neq(ctx.read(mem, a), ctx.read(mem, b)),
                      ctx.eq(a, b));
    EXPECT_EQ(checkSat(ctx, f), Outcome::Unsat);
}

TEST(Smt, DistinctAddressesMayDiffer)
{
    ExprContext ctx;
    Expr mem = ctx.memVar("m");
    Expr a = ctx.bvVar("a");
    Expr b = ctx.bvVar("b");
    Expr f = ctx.neq(ctx.read(mem, a), ctx.read(mem, b));
    SmtSolver s(ctx, f);
    ASSERT_EQ(s.solve(), Outcome::Sat);
    auto model = s.model();
    EXPECT_NE(model.bv("a"), model.bv("b"));
    EXPECT_TRUE(expr::evalBool(f, model));
}

TEST(Smt, ReadOverStoreChainLowered)
{
    // mem' = store(m, a, 7); read(mem', b) == 9 with a == b is unsat.
    ExprContext ctx;
    Expr m = ctx.memVar("m");
    Expr a = ctx.bvVar("a");
    Expr b = ctx.bvVar("b");
    Expr chain = ctx.store(m, a, ctx.bv(7));
    Expr f = ctx.land(ctx.eq(ctx.read(chain, b), ctx.bv(9)),
                      ctx.eq(a, b));
    EXPECT_EQ(checkSat(ctx, f), Outcome::Unsat);
    // Without the alias it is satisfiable.
    Expr g = ctx.eq(ctx.read(chain, b), ctx.bv(9));
    SmtSolver s(ctx, g);
    ASSERT_EQ(s.solve(), Outcome::Sat);
    auto model = s.model();
    EXPECT_NE(model.bv("a"), model.bv("b"));
}

TEST(Smt, NestedReadAddressing)
{
    // mem[mem[x]] == 5 with mem[x] constrained into a region.
    ExprContext ctx;
    Expr mem = ctx.memVar("mem_1");
    Expr x = ctx.bvVar("x");
    Expr inner = ctx.read(mem, x);
    Expr f = ctx.conj({ctx.eq(ctx.read(mem, inner), ctx.bv(5)),
                       ctx.ule(ctx.bv(0x1000), inner),
                       ctx.ult(inner, ctx.bv(0x2000)),
                       ctx.eq(x, ctx.bv(0x500))});
    SmtSolver s(ctx, f);
    ASSERT_EQ(s.solve(), Outcome::Sat);
    auto model = s.model();
    EXPECT_TRUE(expr::evalBool(f, model));
    const std::uint64_t ptr = model.mems["mem_1"].load(0x500);
    EXPECT_GE(ptr, 0x1000u);
    EXPECT_LT(ptr, 0x2000u);
    EXPECT_EQ(model.mems["mem_1"].load(ptr), 5u);
}

TEST(Smt, RequireConjoinsConstraints)
{
    ExprContext ctx;
    Expr x = ctx.bvVar("x");
    SmtSolver s(ctx, ctx.ult(x, ctx.bv(10)));
    ASSERT_EQ(s.solve(), Outcome::Sat);
    s.require(ctx.ult(ctx.bv(3), x));
    ASSERT_EQ(s.solve(), Outcome::Sat);
    auto model = s.model();
    EXPECT_GT(model.bv("x"), 3u);
    EXPECT_LT(model.bv("x"), 10u);
    s.require(ctx.ult(x, ctx.bv(2)));
    EXPECT_EQ(s.solve(), Outcome::Unsat);
}

TEST(Smt, SolveWithIsTemporary)
{
    ExprContext ctx;
    Expr x = ctx.bvVar("x");
    SmtSolver s(ctx, ctx.ult(x, ctx.bv(100)));
    EXPECT_EQ(s.solveWith(ctx.eq(x, ctx.bv(200))), Outcome::Unsat);
    // The temporary constraint must not stick.
    EXPECT_EQ(s.solve(), Outcome::Sat);
    EXPECT_EQ(s.solveWith(ctx.eq(x, ctx.bv(42))), Outcome::Sat);
    EXPECT_EQ(s.model().bv("x"), 42u);
}

TEST(Smt, BlockCurrentModelEnumeratesDistinctModels)
{
    ExprContext ctx;
    Expr x = ctx.bvVar("x");
    SmtSolver s(ctx, ctx.ult(x, ctx.bv(4))); // 4 models
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 4; ++i) {
        ASSERT_EQ(s.solve(), Outcome::Sat) << i;
        seen.insert(s.model().bv("x"));
        ASSERT_TRUE(s.blockCurrentModel({x}) || i == 3);
    }
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_EQ(s.solve(), Outcome::Unsat);
}

TEST(Smt, CanonicalModelsAreMinimal)
{
    // With default phases unconstrained bits settle to 0 — the
    // "boring Z3 model" behaviour the paper's baseline exhibits.
    ExprContext ctx;
    Expr x = ctx.bvVar("x");
    SmtSolver s(ctx, ctx.ule(ctx.bv(0), x));
    ASSERT_EQ(s.solve(), Outcome::Sat);
    EXPECT_EQ(s.model().bv("x"), 0u);
}

TEST(Smt, RandomPhasesDiversifyModels)
{
    ExprContext ctx;
    Rng rng(5);
    Expr x = ctx.bvVar("x");
    SmtSolver s(ctx, ctx.ult(ctx.bv(100), x));
    s.randomizePhases(rng);
    ASSERT_EQ(s.solve(), Outcome::Sat);
    const std::uint64_t v1 = s.model().bv("x");
    s.randomizePhases(rng);
    ASSERT_EQ(s.solve(), Outcome::Sat);
    const std::uint64_t v2 = s.model().bv("x");
    EXPECT_NE(v1, v2); // astronomically unlikely to collide
}

TEST(Smt, RelationShapedFormula)
{
    // A miniature of the Mct relation for "ldr x2,[x0]": path conds
    // trivially true, base obs equal (x0_1 == x0_2), refined obs
    // differ (mem values differ).
    ExprContext ctx;
    Expr x0_1 = ctx.bvVar("x0_1"), x0_2 = ctx.bvVar("x0_2");
    Expr m1 = ctx.memVar("mem_1"), m2 = ctx.memVar("mem_2");
    Expr f = ctx.conj({
        ctx.eq(x0_1, x0_2),
        ctx.neq(ctx.read(m1, x0_1), ctx.read(m2, x0_2)),
        ctx.ule(ctx.bv(0x80000), x0_1),
        ctx.ult(x0_1, ctx.bv(0x100000)),
    });
    SmtSolver s(ctx, f);
    ASSERT_EQ(s.solve(), Outcome::Sat);
    auto model = s.model();
    EXPECT_TRUE(expr::evalBool(f, model));
    EXPECT_EQ(model.bv("x0_1"), model.bv("x0_2"));
    EXPECT_NE(model.mems["mem_1"].load(model.bv("x0_1")),
              model.mems["mem_2"].load(model.bv("x0_2")));
}

TEST(Smt, UnknownOnTinyBudget)
{
    // Multiplication circuit with a 1-conflict budget: Unknown.
    ExprContext ctx;
    Expr x = ctx.bvVar("x");
    Expr y = ctx.bvVar("y");
    Expr f = ctx.land(
        ctx.eq(ctx.mul(x, y), ctx.bv(0x123456789abcdefULL)),
        ctx.land(ctx.ult(ctx.bv(1), x), ctx.ult(ctx.bv(1), y)));
    SmtSolver s(ctx, f);
    const Outcome o = s.solve(1);
    EXPECT_TRUE(o == Outcome::Unknown || o == Outcome::Sat);
}

} // namespace
} // namespace scamv::smt
