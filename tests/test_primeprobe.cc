/** @file Tests for the Prime+Probe measurement channel: the
 * "realistic attacker" of Section 6.1 using PMC reload timing instead
 * of privileged TrustZone cache inspection. */

#include <gtest/gtest.h>

#include "bir/asm.hh"
#include "core/pipeline.hh"
#include "harness/platform.hh"

namespace scamv::harness {
namespace {

bir::Program
prog(const char *src)
{
    auto r = bir::assemble(src);
    EXPECT_TRUE(r.ok()) << r.error;
    return r.program;
}

ProgramInput
input(std::initializer_list<std::pair<int, std::uint64_t>> regs,
      MemInit mem = {})
{
    ProgramInput in;
    for (auto [r, v] : regs)
        in.regs.regs[r] = v;
    in.mem = std::move(mem);
    return in;
}

PlatformConfig
ppConfig()
{
    PlatformConfig cfg;
    cfg.channel = Channel::PrimeProbe;
    return cfg;
}

TEST(PrimeProbe, VictimAccessRaisesProbeLatency)
{
    Platform platform(ppConfig());
    auto p = prog("ldr x1, [x0]\nret\n");
    // Victim touches set 5.
    auto lat = platform.probeOnce(p, input({{0, 0x80000 + 5 * 64}}));
    ASSERT_EQ(lat.size(), 128u);
    // Set 5 lost one attacker way: exactly one probe load misses.
    const std::uint64_t hit = 4, miss = 150; // defaults
    EXPECT_EQ(lat[5], 3 * hit + miss);
    for (int s = 0; s < 128; ++s) {
        if (s != 5) {
            EXPECT_EQ(lat[s], 4 * hit) << s;
        }
    }
}

TEST(PrimeProbe, IdenticalStatesIndistinguishable)
{
    Platform platform(ppConfig());
    auto p = prog("ldr x1, [x0]\nret\n");
    TestCase tc;
    tc.s1 = input({{0, 0x80000}});
    tc.s2 = input({{0, 0x80000}});
    EXPECT_EQ(platform.runExperiment(p, tc).verdict,
              Verdict::Indistinguishable);
}

TEST(PrimeProbe, DifferentSetsDistinguishable)
{
    Platform platform(ppConfig());
    auto p = prog("ldr x1, [x0]\nret\n");
    TestCase tc;
    tc.s1 = input({{0, 0x80000}});
    tc.s2 = input({{0, 0x80000 + 7 * 64}});
    EXPECT_EQ(platform.runExperiment(p, tc).verdict,
              Verdict::Counterexample);
}

TEST(PrimeProbe, SameSetDifferentTagInvisible)
{
    // Prime+Probe only sees *which sets* are touched, not tags: two
    // victim addresses in the same set are indistinguishable — unlike
    // the TrustZone snapshot, which sees the tag.
    auto p = prog("ldr x1, [x0]\nret\n");
    TestCase tc;
    tc.s1 = input({{0, 0x80000}});
    tc.s2 = input({{0, 0x80000 + 128 * 64}}); // same set 0, other tag

    Platform pp(ppConfig());
    EXPECT_EQ(pp.runExperiment(p, tc).verdict,
              Verdict::Indistinguishable);

    PlatformConfig tz;
    tz.channel = Channel::TrustZoneSnapshot;
    Platform snapshot(tz);
    EXPECT_EQ(snapshot.runExperiment(p, tc).verdict,
              Verdict::Counterexample);
}

TEST(PrimeProbe, DetectsSiSCloakLeak)
{
    Platform platform(ppConfig());
    auto p = prog("ldr x2, [x0, x1]\n"
                  "b.ne x1, x4, end\n"
                  "ldr x6, [x5, x2]\n"
                  "end: ret\n");
    TestCase tc;
    // The two transiently accessed lines must land in *different
    // sets*: Prime+Probe has set granularity (no tag visibility).
    tc.s1 = input({{0, 0x80000}, {1, 8}, {4, 99}, {5, 0}},
                  {{0x80008, 0x90000}});
    tc.s2 = input({{0, 0x80000}, {1, 8}, {4, 99}, {5, 0}},
                  {{0x80008, 0x90000 + 7 * 64}});
    ProgramInput train = input({{0, 0x80000}, {1, 8}, {4, 8}, {5, 0}},
                               {{0x80008, 0x88000}});
    EXPECT_EQ(platform.runExperiment(p, tc, train).verdict,
              Verdict::Counterexample);
}

TEST(PrimeProbe, DetectsPrefetchSpill)
{
    PlatformConfig cfg = ppConfig();
    cfg.visibleLoSet = 61;
    cfg.visibleHiSet = 127;
    Platform platform(cfg);
    auto p = prog("ldr x1, [x0]\n"
                  "ldr x2, [x0, #64]\n"
                  "ldr x3, [x0, #128]\n"
                  "ret\n");
    TestCase tc;
    tc.s1 = input({{0, 0x80000 + 58 * 64}}); // prefetch lands in set 61
    tc.s2 = input({{0, 0x80000 + 10 * 64}});
    EXPECT_EQ(platform.runExperiment(p, tc).verdict,
              Verdict::Counterexample);
}

TEST(PrimeProbe, PipelineCampaignMatchesSnapshotShape)
{
    // Running the Mct/Template A refined campaign over Prime+Probe
    // still finds SiSCloak counterexamples.
    core::PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    cfg.programs = 5;
    cfg.testsPerProgram = 6;
    cfg.seed = 31;
    cfg.platform.channel = Channel::PrimeProbe;
    auto stats = core::Pipeline(cfg).run();
    EXPECT_GT(stats.experiments, 0);
    EXPECT_GT(stats.counterexamples, 0);
}

TEST(PrimeProbe, ProbeLatenciesDeterministic)
{
    Platform a(ppConfig()), b(ppConfig());
    auto p = prog("ldr x1, [x0]\nldr x2, [x0, #64]\nret\n");
    auto in = input({{0, 0x80000 + 20 * 64}});
    EXPECT_EQ(a.probeOnce(p, in), b.probeOnce(p, in));
}

} // namespace
} // namespace scamv::harness
