/** @file End-to-end tests of the Fig. 6 counterexamples: the
 * Spectre-PHT variant and the SiSCloak bit-cloaking attack, including
 * full secret recovery with Flush+Reload. */

#include <gtest/gtest.h>

#include "bir/asm.hh"
#include "harness/flush_reload.hh"
#include "harness/platform.hh"

namespace scamv {
namespace {

using harness::FlushReloadAttacker;

// Memory layout of the demos.
constexpr std::uint64_t kArrayA = 0x80000;      // victim array A
constexpr std::uint64_t kArrayB = 0x90000;      // shared probe array B
constexpr std::uint64_t kSizeSlot = kArrayA - 8; // #A-size

/**
 * Fig. 6, middle column: Spectre-PHT variant where the first load is
 * hoisted before the bounds check.
 *
 *     ldr x2, [#A + x0]      ; anticipated load
 *     if x0 < x1:            ; bounds check (x1 = size of A)
 *         ldr x3, [#B + x2]  ; dependent access (leaks x2)
 */
bir::Program
siscloakVariant1()
{
    auto r = bir::assemble(
        // x5 = #A, x6 = #B, x0 = attacker index, x1 = bound
        "ldr x2, [x5, x0]\n"
        "b.geu x0, x1, end\n"
        "ldr x3, [x6, x2]\n"
        "end: ret\n",
        "siscloak-v1");
    EXPECT_TRUE(r.ok()) << r.error;
    return r.program;
}

/**
 * Fig. 6, right column: classification bit cloaking.  The high bit of
 * an element of A marks it secret; the branch guards the B access.
 *
 *     ldr x2, [#A + x0]
 *     if (x2 & 0x80000000) == 0:   ; public?
 *         ldr x3, [#B + x2]
 */
bir::Program
siscloakVariant2()
{
    auto r = bir::assemble("ldr x2, [x5, x0]\n"
                           "and x4, x2, #0x80000000\n"
                           "b.ne x4, #0, end\n"
                           "ldr x3, [x6, x2]\n"
                           "end: ret\n",
                           "siscloak-v2");
    EXPECT_TRUE(r.ok()) << r.error;
    return r.program;
}

TEST(SiSCloak, Variant1CacheStateDiffersOnSecret)
{
    // Two states, identical except for the out-of-bounds element that
    // only a speculative load can reach.
    harness::Platform platform(harness::PlatformConfig{});
    bir::Program p = siscloakVariant1();

    harness::TestCase tc;
    auto mk = [&](std::uint64_t secret) {
        harness::ProgramInput in;
        in.regs.regs[5] = kArrayA;
        in.regs.regs[6] = kArrayB;
        in.regs.regs[0] = 512; // out of bounds (size 256)
        in.regs.regs[1] = 256;
        in.mem = {{kArrayA + 512, secret}};
        return in;
    };
    tc.s1 = mk(3 * 64);
    tc.s2 = mk(9 * 64);

    // Training input: in-bounds index, branch not taken (x0 < x1).
    harness::ProgramInput train;
    train.regs.regs[5] = kArrayA;
    train.regs.regs[6] = kArrayB;
    train.regs.regs[0] = 8;
    train.regs.regs[1] = 256;
    train.mem = {{kArrayA + 8, 0}};

    auto r = platform.runExperiment(p, tc, train);
    EXPECT_EQ(r.verdict, harness::Verdict::Counterexample);
    // Without mistraining, the bounds check predicts correctly and
    // nothing leaks.
    auto clean = platform.runExperiment(p, tc);
    EXPECT_EQ(clean.verdict, harness::Verdict::Indistinguishable);
}

/** Run the victim once on a prepared core and return hot B-lines. */
std::vector<int>
flushRunReload(hw::Core &core, const bir::Program &p,
               const hw::ArchState &state, int lines)
{
    FlushReloadAttacker attacker(kArrayB, lines);
    attacker.flush(core);
    core.run(p, state);
    return attacker.hotLines(core);
}

TEST(SiSCloak, Variant1FullAttackRecoversSecret)
{
    // The real attack of Section 6.4: recover the secret byte stored
    // out of bounds, via Flush+Reload on B and the PMC cycle counter.
    bir::Program p = siscloakVariant1();
    hw::Core core;

    const std::uint64_t secret_line = 13; // value to recover (0..31)
    core.memory().store(kArrayA + 512, secret_line * 64);
    core.memory().store(kSizeSlot, 256);

    hw::ArchState train_state;
    train_state.regs[5] = kArrayA;
    train_state.regs[6] = kArrayB;
    train_state.regs[1] = 256;

    // Phase 1: train the bounds check to pass.
    for (int i = 0; i < 4; ++i) {
        train_state.regs[0] = 8 * i;
        core.memory().store(kArrayA + 8 * i, 0);
        core.run(p, train_state);
    }

    // Phase 2: flush B, supply the out-of-bounds index, reload.
    hw::ArchState attack_state = train_state;
    attack_state.regs[0] = 512;
    auto hot = flushRunReload(core, p, attack_state, 32);

    // The architectural load of A[512] and the transient B access are
    // in different arrays; only the secret-indexed B line can be hot.
    ASSERT_EQ(hot.size(), 1u);
    EXPECT_EQ(hot[0], static_cast<int>(secret_line));
}

TEST(SiSCloak, Variant2LeaksClassifiedElement)
{
    bir::Program p = siscloakVariant2();
    hw::Core core;

    // A[x0] holds a secret element: high classification bit set, low
    // bits are the sensitive value.
    const std::uint64_t secret_value = 21;
    core.memory().store(kArrayA + 64,
                        0x80000000ULL | (secret_value * 64));

    hw::ArchState st;
    st.regs[5] = kArrayA;
    st.regs[6] = kArrayB;

    // Train with public elements (high bit clear): branch not taken.
    for (int i = 0; i < 4; ++i) {
        st.regs[0] = 8 * i;
        core.memory().store(kArrayA + 8 * i, (i % 4) * 64);
        core.run(p, st);
    }

    // Attack: index the classified element.  Architecturally the
    // branch is taken (secret), but the predictor says "public".
    st.regs[0] = 64;
    FlushReloadAttacker attacker(kArrayB, 4096 / 64 * 2);
    attacker.flush(core);
    core.run(p, st);
    auto hot = attacker.hotLines(core);
    // The transient ldr x3, [#B + x2] used the full x2 including the
    // classification bit... the address wraps far beyond B; what
    // leaks is that *some* B-relative line keyed by x2 was fetched.
    // Recover the low bits by probing B + 0x80000000 + i*64 instead.
    FlushReloadAttacker wide(kArrayB + 0x80000000ULL, 32);
    hw::Core core2;
    core2.memory().store(kArrayA + 64,
                         0x80000000ULL | (secret_value * 64));
    hw::ArchState st2 = st;
    for (int i = 0; i < 4; ++i) {
        st2.regs[0] = 8 * i;
        core2.memory().store(kArrayA + 8 * i, (i % 4) * 64);
        core2.run(p, st2);
    }
    st2.regs[0] = 64;
    wide.flush(core2);
    core2.run(p, st2);
    auto hot2 = wide.hotLines(core2);
    ASSERT_EQ(hot2.size(), 1u);
    EXPECT_EQ(hot2[0], static_cast<int>(secret_value));
    (void)hot;
}

TEST(SiSCloak, DependentVariantDoesNotLeakOnA53)
{
    // Classic Spectre-PHT (both loads inside the branch) is blocked
    // by the no-forwarding rule: the B access never issues.
    auto r = bir::assemble("b.geu x0, x1, end\n"
                           "ldr x2, [x5, x0]\n"
                           "ldr x3, [x6, x2]\n"
                           "end: ret\n",
                           "spectre-pht");
    ASSERT_TRUE(r.ok()) << r.error;
    bir::Program p = r.program;

    hw::Core core;
    core.memory().store(kArrayA + 512, 13 * 64);
    hw::ArchState st;
    st.regs[5] = kArrayA;
    st.regs[6] = kArrayB;
    st.regs[1] = 256;
    for (int i = 0; i < 4; ++i) {
        st.regs[0] = 8 * i;
        core.run(p, st);
    }
    st.regs[0] = 512;
    auto hot = flushRunReload(core, p, st, 32);
    EXPECT_TRUE(hot.empty()); // Cortex-A53 claim: no Spectre-PHT
}

} // namespace
} // namespace scamv
