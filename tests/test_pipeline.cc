/** @file Integration tests for the full validation pipeline. */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "core/report.hh"

namespace scamv::core {
namespace {

PipelineConfig
baseConfig()
{
    PipelineConfig cfg;
    cfg.programs = 6;
    cfg.testsPerProgram = 8;
    cfg.seed = 42;
    return cfg;
}

TEST(Pipeline, NeedsSpecInstrumentationDetection)
{
    PipelineConfig cfg;
    cfg.model = obs::ModelKind::Mct;
    EXPECT_FALSE(needsSpecInstrumentation(cfg));
    cfg.refinement = obs::ModelKind::Mspec;
    EXPECT_TRUE(needsSpecInstrumentation(cfg));
    cfg.refinement.reset();
    cfg.model = obs::ModelKind::Mspec1;
    EXPECT_TRUE(needsSpecInstrumentation(cfg));
}

TEST(Pipeline, ScaledHelpers)
{
    EXPECT_EQ(scaled(100, 0.5), 50);
    EXPECT_EQ(scaled(3, 0.1), 1); // never below 1
    EXPECT_EQ(scaled(10, 1.0), 10);
}

TEST(Pipeline, MpartWithRefinementFindsPrefetchCounterexamples)
{
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::Stride;
    cfg.model = obs::ModelKind::Mpart;
    cfg.refinement = obs::ModelKind::MpartRefined;
    cfg.coverage = Coverage::PcAndLine;
    cfg.programs = 12;
    cfg.testsPerProgram = 12;
    cfg.modelParams.attacker.loSet = 61;
    cfg.platform.visibleLoSet = 61;
    cfg.platform.visibleHiSet = 127;
    RunStats stats = Pipeline(cfg).run();
    EXPECT_EQ(stats.programs, 12);
    EXPECT_GT(stats.experiments, 0);
    // Prefetching breaks cache colouring: refinement must expose it.
    EXPECT_GT(stats.counterexamples, 0);
    EXPECT_GT(stats.programsWithCex, 0);
    EXPECT_GE(stats.ttcSeconds, 0.0);
}

TEST(Pipeline, MpartPageAlignedFindsNothing)
{
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::Stride;
    cfg.model = obs::ModelKind::Mpart;
    cfg.refinement = obs::ModelKind::MpartRefined;
    cfg.coverage = Coverage::PcAndLine;
    cfg.programs = 10;
    cfg.testsPerProgram = 10;
    cfg.modelParams.attacker.loSet = 64; // page aligned
    cfg.platform.visibleLoSet = 64;
    cfg.platform.visibleHiSet = 127;
    RunStats stats = Pipeline(cfg).run();
    // The prefetcher stops at the page boundary: colouring holds.
    EXPECT_EQ(stats.counterexamples, 0);
    EXPECT_LT(stats.ttcSeconds, 0.0);
}

TEST(Pipeline, MctTemplateAWithMspecFindsSiSCloak)
{
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    RunStats stats = Pipeline(cfg).run();
    EXPECT_GT(stats.experiments, 0);
    EXPECT_GT(stats.counterexamples, 0);
}

TEST(Pipeline, MctTemplateAWithoutRefinementFindsLittle)
{
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.train = true;
    RunStats stats = Pipeline(cfg).run();
    // Canonical models are too similar to trigger the leak; allow a
    // rare lucky hit but require a clear gap to the refined run.
    PipelineConfig refined = cfg;
    refined.refinement = obs::ModelKind::Mspec;
    RunStats refined_stats = Pipeline(refined).run();
    EXPECT_LT(stats.counterexamples, refined_stats.counterexamples);
}

TEST(Pipeline, Mspec1OnTemplateCIsSound)
{
    // Dependent transient loads never issue on the A53 core: Mspec1
    // validates cleanly on Template C (Fig. 7, col 3).
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::C;
    cfg.model = obs::ModelKind::Mspec1;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    RunStats stats = Pipeline(cfg).run();
    EXPECT_EQ(stats.counterexamples, 0);
}

TEST(Pipeline, MctOnTemplateDStraightLineIsSound)
{
    // No straight-line speculation on direct jumps (Fig. 7, col 5).
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::D;
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.rewriteJumps = true; // Mspec'
    cfg.train = false;       // no conditional branches to train
    RunStats stats = Pipeline(cfg).run();
    EXPECT_GT(stats.experiments, 0);
    EXPECT_EQ(stats.counterexamples, 0);
}

TEST(Pipeline, DeterministicAcrossRuns)
{
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    cfg.programs = 3;
    cfg.testsPerProgram = 5;
    RunStats a = Pipeline(cfg).run();
    RunStats b = Pipeline(cfg).run();
    EXPECT_EQ(a.experiments, b.experiments);
    EXPECT_EQ(a.counterexamples, b.counterexamples);
    EXPECT_EQ(a.inconclusive, b.inconclusive);
}

TEST(Pipeline, SamplerStrategyAlsoWorks)
{
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    cfg.strategy = SolveStrategy::Sampler;
    cfg.programs = 4;
    cfg.testsPerProgram = 6;
    RunStats stats = Pipeline(cfg).run();
    EXPECT_GT(stats.experiments, 0);
}

TEST(Pipeline, NoiseYieldsInconclusives)
{
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::Stride;
    cfg.model = obs::ModelKind::Mpart;
    cfg.refinement = obs::ModelKind::MpartRefined;
    cfg.coverage = Coverage::PcAndLine;
    cfg.platform.noiseProbability = 0.3;
    cfg.platform.visibleLoSet = 61;
    cfg.platform.visibleHiSet = 127;
    cfg.modelParams.attacker.loSet = 61;
    cfg.programs = 8;
    cfg.testsPerProgram = 10;
    RunStats stats = Pipeline(cfg).run();
    EXPECT_GT(stats.inconclusive, 0);
}

TEST(Report, CampaignTableRendersAllRows)
{
    RunStats s;
    s.programs = 10;
    s.programsWithCex = 3;
    s.experiments = 100;
    s.counterexamples = 12;
    s.inconclusive = 4;
    s.ttcSeconds = 1.5;
    TextTable t = renderCampaignTable(
        {{"Mct", "Template A", "No", "Mpc"}}, {s});
    const std::string out = t.render();
    EXPECT_NE(out.find("Mct"), std::string::npos);
    EXPECT_NE(out.find("Programs"), std::string::npos);
    EXPECT_NE(out.find("100"), std::string::npos);
    EXPECT_NE(out.find("T.T.C."), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
}

TEST(Report, ChecklistRatios)
{
    RunStats base, refined;
    base.programsWithCex = 2;
    base.counterexamples = 10;
    base.ttcSeconds = 100.0;
    refined.programsWithCex = 8;
    refined.counterexamples = 200;
    refined.ttcSeconds = 5.0;
    const std::string out =
        renderChecklist(base, refined).render();
    EXPECT_NE(out.find("4.0x"), std::string::npos);  // programs ratio
    EXPECT_NE(out.find("20.0x"), std::string::npos); // cex ratio
    EXPECT_NE(out.find("faster"), std::string::npos);
}

} // namespace
} // namespace scamv::core
