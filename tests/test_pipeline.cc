/** @file Integration tests for the full validation pipeline. */

#include <gtest/gtest.h>

#include <cstdlib>

#include "bir/asm.hh"
#include "core/expdb.hh"
#include "core/pipeline.hh"
#include "core/report.hh"

namespace scamv::core {
namespace {

PipelineConfig
baseConfig()
{
    PipelineConfig cfg;
    cfg.programs = 6;
    cfg.testsPerProgram = 8;
    cfg.seed = 42;
    return cfg;
}

TEST(Pipeline, NeedsSpecInstrumentationDetection)
{
    PipelineConfig cfg;
    cfg.model = obs::ModelKind::Mct;
    EXPECT_FALSE(needsSpecInstrumentation(cfg));
    cfg.refinement = obs::ModelKind::Mspec;
    EXPECT_TRUE(needsSpecInstrumentation(cfg));
    cfg.refinement.reset();
    cfg.model = obs::ModelKind::Mspec1;
    EXPECT_TRUE(needsSpecInstrumentation(cfg));
}

TEST(Pipeline, ScaledHelpers)
{
    EXPECT_EQ(scaled(100, 0.5), 50);
    EXPECT_EQ(scaled(3, 0.1), 1); // never below 1
    EXPECT_EQ(scaled(10, 1.0), 10);
}

TEST(Pipeline, MpartWithRefinementFindsPrefetchCounterexamples)
{
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::Stride;
    cfg.model = obs::ModelKind::Mpart;
    cfg.refinement = obs::ModelKind::MpartRefined;
    cfg.coverage = Coverage::PcAndLine;
    cfg.programs = 12;
    cfg.testsPerProgram = 12;
    cfg.modelParams.attacker.loSet = 61;
    cfg.platform.visibleLoSet = 61;
    cfg.platform.visibleHiSet = 127;
    RunStats stats = Pipeline(cfg).run();
    EXPECT_EQ(stats.programs, 12);
    EXPECT_GT(stats.experiments, 0);
    // Prefetching breaks cache colouring: refinement must expose it.
    EXPECT_GT(stats.counterexamples, 0);
    EXPECT_GT(stats.programsWithCex, 0);
    EXPECT_GE(stats.ttcSeconds, 0.0);
}

TEST(Pipeline, MpartPageAlignedFindsNothing)
{
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::Stride;
    cfg.model = obs::ModelKind::Mpart;
    cfg.refinement = obs::ModelKind::MpartRefined;
    cfg.coverage = Coverage::PcAndLine;
    cfg.programs = 10;
    cfg.testsPerProgram = 10;
    cfg.modelParams.attacker.loSet = 64; // page aligned
    cfg.platform.visibleLoSet = 64;
    cfg.platform.visibleHiSet = 127;
    RunStats stats = Pipeline(cfg).run();
    // The prefetcher stops at the page boundary: colouring holds.
    EXPECT_EQ(stats.counterexamples, 0);
    EXPECT_LT(stats.ttcSeconds, 0.0);
}

TEST(Pipeline, MctTemplateAWithMspecFindsSiSCloak)
{
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    RunStats stats = Pipeline(cfg).run();
    EXPECT_GT(stats.experiments, 0);
    EXPECT_GT(stats.counterexamples, 0);
}

TEST(Pipeline, MctTemplateAWithoutRefinementFindsLittle)
{
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.train = true;
    RunStats stats = Pipeline(cfg).run();
    // Canonical models are too similar to trigger the leak; allow a
    // rare lucky hit but require a clear gap to the refined run.
    PipelineConfig refined = cfg;
    refined.refinement = obs::ModelKind::Mspec;
    RunStats refined_stats = Pipeline(refined).run();
    EXPECT_LT(stats.counterexamples, refined_stats.counterexamples);
}

TEST(Pipeline, Mspec1OnTemplateCIsSound)
{
    // Dependent transient loads never issue on the A53 core: Mspec1
    // validates cleanly on Template C (Fig. 7, col 3).
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::C;
    cfg.model = obs::ModelKind::Mspec1;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    RunStats stats = Pipeline(cfg).run();
    EXPECT_EQ(stats.counterexamples, 0);
}

TEST(Pipeline, MctOnTemplateDStraightLineIsSound)
{
    // No straight-line speculation on direct jumps (Fig. 7, col 5).
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::D;
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.rewriteJumps = true; // Mspec'
    cfg.train = false;       // no conditional branches to train
    RunStats stats = Pipeline(cfg).run();
    EXPECT_GT(stats.experiments, 0);
    EXPECT_EQ(stats.counterexamples, 0);
}

TEST(Pipeline, DeterministicAcrossRuns)
{
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    cfg.programs = 3;
    cfg.testsPerProgram = 5;
    RunStats a = Pipeline(cfg).run();
    RunStats b = Pipeline(cfg).run();
    EXPECT_EQ(a.experiments, b.experiments);
    EXPECT_EQ(a.counterexamples, b.counterexamples);
    EXPECT_EQ(a.inconclusive, b.inconclusive);
}

void
expectSameDb(const ExperimentDb &a, const ExperimentDb &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const ExperimentRecord &ra = a.all()[i];
        const ExperimentRecord &rb = b.all()[i];
        EXPECT_EQ(ra.programName, rb.programName) << "record " << i;
        EXPECT_EQ(ra.programText, rb.programText) << "record " << i;
        EXPECT_EQ(ra.pathId, rb.pathId) << "record " << i;
        EXPECT_EQ(ra.trained, rb.trained) << "record " << i;
        EXPECT_EQ(ra.verdict, rb.verdict) << "record " << i;
        EXPECT_EQ(ra.differingReps, rb.differingReps) << "record " << i;
        EXPECT_EQ(ra.totalReps, rb.totalReps) << "record " << i;
        EXPECT_EQ(ra.testCase.s1.regs.regs, rb.testCase.s1.regs.regs);
        EXPECT_EQ(ra.testCase.s2.regs.regs, rb.testCase.s2.regs.regs);
        EXPECT_EQ(ra.testCase.s1.mem, rb.testCase.s1.mem);
        EXPECT_EQ(ra.testCase.s2.mem, rb.testCase.s2.mem);
    }
}

void
expectSameCounters(const RunStats &a, const RunStats &b)
{
    EXPECT_EQ(a.programs, b.programs);
    EXPECT_EQ(a.programsWithCex, b.programsWithCex);
    EXPECT_EQ(a.experiments, b.experiments);
    EXPECT_EQ(a.counterexamples, b.counterexamples);
    EXPECT_EQ(a.inconclusive, b.inconclusive);
    EXPECT_EQ(a.generationFailures, b.generationFailures);
}

TEST(Pipeline, ThreadCountDeterminism)
{
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    cfg.programs = 8;
    cfg.testsPerProgram = 6;
    cfg.platform.noiseProbability = 0.05; // exercise the noise Rng too

    ExperimentDb db_serial, db_parallel;
    PipelineConfig serial = cfg;
    serial.threads = 1;
    serial.database = &db_serial;
    PipelineConfig parallel = cfg;
    parallel.threads = 4;
    parallel.database = &db_parallel;

    const RunStats s = Pipeline(serial).run();
    const RunStats p = Pipeline(parallel).run();
    expectSameCounters(s, p);
    expectSameDb(db_serial, db_parallel);
    EXPECT_GT(s.experiments, 0);
}

TEST(Pipeline, ThreadCountDeterminismWithLineCoverage)
{
    // The Mpart/Stride configuration drives the other solver paths:
    // line-coverage redraws, per-pair retirement, refinement merge.
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::Stride;
    cfg.model = obs::ModelKind::Mpart;
    cfg.refinement = obs::ModelKind::MpartRefined;
    cfg.coverage = Coverage::PcAndLine;
    cfg.programs = 6;
    cfg.testsPerProgram = 6;
    cfg.modelParams.attacker.loSet = 61;
    cfg.platform.visibleLoSet = 61;
    cfg.platform.visibleHiSet = 127;

    ExperimentDb db_serial, db_parallel;
    PipelineConfig serial = cfg;
    serial.threads = 1;
    serial.database = &db_serial;
    PipelineConfig parallel = cfg;
    parallel.threads = 3;
    parallel.database = &db_parallel;

    expectSameCounters(Pipeline(serial).run(),
                       Pipeline(parallel).run());
    expectSameDb(db_serial, db_parallel);
}

TEST(Pipeline, DeriveProgramSeedSpreadsAndIsStable)
{
    EXPECT_EQ(deriveProgramSeed(42, 0), deriveProgramSeed(42, 0));
    EXPECT_NE(deriveProgramSeed(42, 0), deriveProgramSeed(42, 1));
    EXPECT_NE(deriveProgramSeed(42, 0), deriveProgramSeed(43, 0));
    // The program stream must not collapse onto the campaign seed.
    EXPECT_NE(deriveProgramSeed(42, 0), 42u);
}

TEST(Pipeline, SymmetrizeModelPreservesRequiredDifferences)
{
    expr::ExprContext ctx;
    const bir::Program prog =
        bir::assemble("ldr x1, [x0]\nldr x2, [x1]\nret\n").program;
    // The relation requires equal x0 and *different* x1 (a
    // refinement disequality); x2 and memory are unconstrained.
    expr::Expr f = ctx.conj({
        ctx.eq(ctx.bvVar("x0_1"), ctx.bvVar("x0_2")),
        ctx.neq(ctx.bvVar("x1_1"), ctx.bvVar("x1_2")),
    });
    expr::Assignment model;
    model.bvVars["x0_1"] = 8;
    model.bvVars["x0_2"] = 8;
    model.bvVars["x1_1"] = 100;
    model.bvVars["x1_2"] = 200;
    model.bvVars["x2_1"] = 7;
    model.bvVars["x2_2"] = 9;
    model.mems["mem_1"].storeWord(0x100, 5);
    model.mems["mem_2"].storeWord(0x100, 6);

    Rng rng(1);
    symmetrizeModel(f, prog, model, rng, 1.0);

    // Required difference survives...
    EXPECT_NE(model.bv("x1_1"), model.bv("x1_2"));
    // ...incidental asymmetry is merged away.
    EXPECT_EQ(model.bv("x0_1"), model.bv("x0_2"));
    EXPECT_EQ(model.bv("x2_2"), 7u);
    EXPECT_EQ(model.mems["mem_2"].load(0x100), 5u);
}

TEST(Pipeline, SymmetrizeModelZeroBiasIsANoOp)
{
    expr::ExprContext ctx;
    const bir::Program prog =
        bir::assemble("ldr x1, [x0]\nret\n").program;
    expr::Expr f = ctx.eq(ctx.bvVar("x0_1"), ctx.bvVar("x0_1"));
    expr::Assignment model;
    model.bvVars["x1_1"] = 1;
    model.bvVars["x1_2"] = 2;
    Rng rng(1);
    symmetrizeModel(f, prog, model, rng, 0.0);
    EXPECT_EQ(model.bv("x1_1"), 1u);
    EXPECT_EQ(model.bv("x1_2"), 2u);
}

TEST(Pipeline, ScaleFromEnvRejectsMalformedValues)
{
    setenv("SCAMV_SCALE", "0.25", 1);
    EXPECT_DOUBLE_EQ(scaleFromEnv(1.0), 0.25);
    setenv("SCAMV_SCALE", "abc", 1);
    EXPECT_DOUBLE_EQ(scaleFromEnv(1.0), 1.0);
    setenv("SCAMV_SCALE", "1.5x", 1);
    EXPECT_DOUBLE_EQ(scaleFromEnv(2.0), 2.0);
    setenv("SCAMV_SCALE", "-3", 1);
    EXPECT_DOUBLE_EQ(scaleFromEnv(1.0), 1.0);
    setenv("SCAMV_SCALE", "1e-1", 1);
    EXPECT_DOUBLE_EQ(scaleFromEnv(1.0), 0.1);
    unsetenv("SCAMV_SCALE");
    EXPECT_DOUBLE_EQ(scaleFromEnv(0.5), 0.5);
}

TEST(Pipeline, SamplerStrategyAlsoWorks)
{
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    cfg.strategy = SolveStrategy::Sampler;
    cfg.programs = 4;
    cfg.testsPerProgram = 6;
    RunStats stats = Pipeline(cfg).run();
    EXPECT_GT(stats.experiments, 0);
}

TEST(Pipeline, NoiseYieldsInconclusives)
{
    PipelineConfig cfg = baseConfig();
    cfg.templateKind = gen::TemplateKind::Stride;
    cfg.model = obs::ModelKind::Mpart;
    cfg.refinement = obs::ModelKind::MpartRefined;
    cfg.coverage = Coverage::PcAndLine;
    cfg.platform.noiseProbability = 0.3;
    cfg.platform.visibleLoSet = 61;
    cfg.platform.visibleHiSet = 127;
    cfg.modelParams.attacker.loSet = 61;
    cfg.programs = 8;
    cfg.testsPerProgram = 10;
    RunStats stats = Pipeline(cfg).run();
    EXPECT_GT(stats.inconclusive, 0);
}

TEST(Report, CampaignTableRendersAllRows)
{
    RunStats s;
    s.programs = 10;
    s.programsWithCex = 3;
    s.experiments = 100;
    s.counterexamples = 12;
    s.inconclusive = 4;
    s.ttcSeconds = 1.5;
    TextTable t = renderCampaignTable(
        {{"Mct", "Template A", "No", "Mpc"}}, {s});
    const std::string out = t.render();
    EXPECT_NE(out.find("Mct"), std::string::npos);
    EXPECT_NE(out.find("Programs"), std::string::npos);
    EXPECT_NE(out.find("100"), std::string::npos);
    EXPECT_NE(out.find("T.T.C."), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
}

TEST(Report, ChecklistRatios)
{
    RunStats base, refined;
    base.programsWithCex = 2;
    base.counterexamples = 10;
    base.ttcSeconds = 100.0;
    refined.programsWithCex = 8;
    refined.counterexamples = 200;
    refined.ttcSeconds = 5.0;
    const std::string out =
        renderChecklist(base, refined).render();
    EXPECT_NE(out.find("4.0x"), std::string::npos);  // programs ratio
    EXPECT_NE(out.find("20.0x"), std::string::npos); // cex ratio
    EXPECT_NE(out.find("faster"), std::string::npos);
}

} // namespace
} // namespace scamv::core
