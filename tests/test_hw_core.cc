/** @file Unit tests for the Cortex-A53-like core model. */

#include <gtest/gtest.h>

#include "bir/asm.hh"
#include "hw/core.hh"

namespace scamv::hw {
namespace {

bir::Program
prog(const char *src)
{
    auto r = bir::assemble(src);
    EXPECT_TRUE(r.ok()) << r.error;
    return r.program;
}

ArchState
state(std::initializer_list<std::pair<int, std::uint64_t>> regs)
{
    ArchState s;
    for (auto [r, v] : regs)
        s.regs[r] = v;
    return s;
}

TEST(Core, AluAndMovSemantics)
{
    Core core;
    auto r = core.run(prog("mov x1, #6\n"
                           "mov x2, #7\n"
                           "mul x3, x1, x2\n"
                           "add x4, x3, #1\n"
                           "sub x5, x4, x1\n"
                           "eor x6, x5, x5\n"
                           "lsl x7, x1, #4\n"
                           "ret\n"),
                      ArchState{});
    EXPECT_EQ(r.finalState.regs[3], 42u);
    EXPECT_EQ(r.finalState.regs[4], 43u);
    EXPECT_EQ(r.finalState.regs[5], 37u);
    EXPECT_EQ(r.finalState.regs[6], 0u);
    EXPECT_EQ(r.finalState.regs[7], 96u);
    EXPECT_EQ(r.instructions, 8u);
}

TEST(Core, LoadStoreRoundTrip)
{
    Core core;
    auto r = core.run(prog("mov x0, #0x80000\n"
                           "mov x1, #99\n"
                           "str x1, [x0]\n"
                           "ldr x2, [x0]\n"
                           "ret\n"),
                      ArchState{});
    EXPECT_EQ(r.finalState.regs[2], 99u);
    EXPECT_TRUE(core.cache().probe(0x80000));
}

TEST(Core, UnwrittenMemoryIsDeterministicJunk)
{
    Core a(CoreConfig{}, 1), b(CoreConfig{}, 1), c(CoreConfig{}, 2);
    auto p = prog("mov x0, #0x80000\nldr x1, [x0]\nret\n");
    const std::uint64_t v1 = a.run(p, ArchState{}).finalState.regs[1];
    const std::uint64_t v2 = b.run(p, ArchState{}).finalState.regs[1];
    const std::uint64_t v3 = c.run(p, ArchState{}).finalState.regs[1];
    EXPECT_EQ(v1, v2); // same board seed
    EXPECT_NE(v1, v3); // different board
    EXPECT_NE(v1, 0u); // junk, not zero
}

TEST(Core, BranchDirectionsBothWork)
{
    auto p = prog("b.lt x0, x1, end\nmov x2, #1\nend: ret\n");
    Core core;
    auto taken = core.run(p, state({{0, 1}, {1, 5}}));
    EXPECT_EQ(taken.finalState.regs[2], 0u);
    auto not_taken = core.run(p, state({{0, 5}, {1, 1}}));
    EXPECT_EQ(not_taken.finalState.regs[2], 1u);
}

TEST(Core, SignedVsUnsignedBranches)
{
    auto p = prog("b.ltu x0, x1, end\nmov x2, #1\nend: ret\n");
    Core core;
    // -1 unsigned is max: not below 5.
    auto r = core.run(p, state({{0, ~0ULL}, {1, 5}}));
    EXPECT_EQ(r.finalState.regs[2], 1u);
    auto p2 = prog("b.lt x0, x1, end\nmov x2, #1\nend: ret\n");
    auto r2 = core.run(p2, state({{0, ~0ULL}, {1, 5}}));
    EXPECT_EQ(r2.finalState.regs[2], 0u); // signed: -1 < 5, taken
}

TEST(Core, JumpSkipsDeadCode)
{
    Core core;
    auto r = core.run(prog("b end\nmov x1, #1\nend: ret\n"),
                      ArchState{});
    EXPECT_EQ(r.finalState.regs[1], 0u);
}

TEST(Core, CyclesGrowWithMisses)
{
    Core core;
    auto p = prog("mov x0, #0x80000\nldr x1, [x0]\nldr x2, [x0]\nret\n");
    auto r = core.run(p, ArchState{});
    // One miss (150) + one hit (4) + ALU-ish costs.
    EXPECT_GT(r.cycles, core.config().missLatency);
    EXPECT_LT(r.cycles, 2 * core.config().missLatency);
}

TEST(Core, MispredictTriggersTransientExecution)
{
    // Train not-taken, then run taken: the wrong path (fall-through)
    // is executed transiently and its load fills the cache.
    auto p = prog("b.eq x0, x1, end\n"
                  "ldr x2, [x3]\n"
                  "end: ret\n");
    Core core;
    // Train: x0 != x1 -> fall-through (not taken).
    for (int i = 0; i < 4; ++i)
        core.run(p, state({{0, 1}, {1, 2}, {3, 0x90000}}));
    core.cache().reset();
    // Measured run: x0 == x1 -> taken, but predicted not-taken.
    auto r = core.run(p, state({{0, 5}, {1, 5}, {3, 0x90000}}));
    EXPECT_EQ(r.mispredicts, 1u);
    EXPECT_EQ(r.transientLoadsIssued, 1u);
    EXPECT_TRUE(core.cache().probe(0x90000)); // SiSCloak footprint
    // Architectural state untouched by the squashed load.
    EXPECT_EQ(r.finalState.regs[2], 0u);
}

TEST(Core, NoMispredictNoTransientExecution)
{
    auto p = prog("b.eq x0, x1, end\n"
                  "ldr x2, [x3]\n"
                  "end: ret\n");
    Core core;
    // Train taken.
    for (int i = 0; i < 4; ++i)
        core.run(p, state({{0, 5}, {1, 5}, {3, 0x90000}}));
    core.cache().reset();
    auto r = core.run(p, state({{0, 7}, {1, 7}, {3, 0x90000}}));
    EXPECT_EQ(r.mispredicts, 0u);
    EXPECT_EQ(r.transientLoadsIssued, 0u);
    EXPECT_FALSE(core.cache().probe(0x90000));
}

TEST(Core, DependentTransientLoadBlocked)
{
    // The A53 rule (Section 6.4): a transient load whose address
    // depends on a transient result does not issue.
    auto p = prog("b.eq x0, x1, end\n"
                  "ldr x2, [x3]\n"
                  "ldr x4, [x2]\n" // depends on transient x2
                  "end: ret\n");
    Core core;
    for (int i = 0; i < 4; ++i)
        core.run(p, state({{0, 1}, {1, 2}, {3, 0x90000}}));
    core.cache().reset();
    auto r = core.run(p, state({{0, 5}, {1, 5}, {3, 0x90000}}));
    EXPECT_EQ(r.mispredicts, 1u);
    EXPECT_EQ(r.transientLoadsIssued, 1u);
    EXPECT_EQ(r.transientLoadsBlocked, 1u);
}

TEST(Core, IndependentTransientLoadsBothIssue)
{
    auto p = prog("b.eq x0, x1, end\n"
                  "ldr x2, [x3]\n"
                  "ldr x4, [x5]\n" // independent
                  "end: ret\n");
    Core core;
    for (int i = 0; i < 4; ++i)
        core.run(p, state({{0, 1}, {1, 2}, {3, 0x90000}, {5, 0xa0000}}));
    core.cache().reset();
    auto r = core.run(p,
                      state({{0, 5}, {1, 5}, {3, 0x90000}, {5, 0xa0000}}));
    EXPECT_EQ(r.transientLoadsIssued, 2u);
    EXPECT_TRUE(core.cache().probe(0x90000));
    EXPECT_TRUE(core.cache().probe(0xa0000));
}

TEST(Core, TransientAluResultBlocksConsumer)
{
    // Arithmetic between the loads keeps the dependency (Template C).
    auto p = prog("b.eq x0, x1, end\n"
                  "ldr x2, [x3]\n"
                  "add x2, x2, #64\n"
                  "ldr x4, [x2]\n"
                  "end: ret\n");
    Core core;
    for (int i = 0; i < 4; ++i)
        core.run(p, state({{0, 1}, {1, 2}, {3, 0x90000}}));
    core.cache().reset();
    auto r = core.run(p, state({{0, 5}, {1, 5}, {3, 0x90000}}));
    EXPECT_EQ(r.transientLoadsIssued, 1u);
    EXPECT_EQ(r.transientLoadsBlocked, 1u);
}

TEST(Core, ForwardingAblationAllowsDependentLoads)
{
    CoreConfig cfg;
    cfg.forwardTransientResults = true; // OoO-style core
    auto p = prog("b.eq x0, x1, end\n"
                  "ldr x2, [x3]\n"
                  "ldr x4, [x2]\n"
                  "end: ret\n");
    Core core(cfg);
    for (int i = 0; i < 4; ++i)
        core.run(p, state({{0, 1}, {1, 2}, {3, 0x90000}}));
    core.cache().reset();
    core.memory().store(0x90000, 0xa0000); // pointer to follow
    auto r = core.run(p, state({{0, 5}, {1, 5}, {3, 0x90000}}));
    EXPECT_EQ(r.transientLoadsIssued, 2u);
    EXPECT_TRUE(core.cache().probe(0xa0000)); // Spectre-PHT leak
}

TEST(Core, TransientWindowBounds)
{
    CoreConfig cfg;
    cfg.transientWindow = 2;
    auto p = prog("b.eq x0, x1, end\n"
                  "ldr x2, [x3]\n"
                  "ldr x4, [x5]\n"
                  "ldr x6, [x7]\n"
                  "end: ret\n");
    Core core(cfg);
    for (int i = 0; i < 4; ++i)
        core.run(p, state({{0, 1}, {1, 2}, {3, 0x90000}, {5, 0xa0000},
                           {7, 0xb0000}}));
    core.cache().reset();
    auto r = core.run(p, state({{0, 5}, {1, 5}, {3, 0x90000},
                                {5, 0xa0000}, {7, 0xb0000}}));
    EXPECT_EQ(r.transientLoadsIssued, 2u); // third is past the window
    EXPECT_FALSE(core.cache().probe(0xb0000));
}

TEST(Core, TransientStoresHaveNoEffect)
{
    auto p = prog("b.eq x0, x1, end\n"
                  "str x2, [x3]\n"
                  "end: ret\n");
    Core core;
    // Training takes the fall-through path, whose store executes
    // architecturally — point it at a different address.
    for (int i = 0; i < 4; ++i)
        core.run(p, state({{0, 1}, {1, 2}, {2, 55}, {3, 0xa0000}}));
    core.cache().reset();
    core.run(p, state({{0, 5}, {1, 5}, {2, 55}, {3, 0x90000}}));
    EXPECT_FALSE(core.cache().probe(0x90000));
    EXPECT_NE(core.memory().load(0x90000), 55u);
}

TEST(Core, NoStraightLineSpeculationByDefault)
{
    auto p = prog("b end\nldr x1, [x2]\nend: ret\n");
    Core core;
    auto r = core.run(p, state({{2, 0x90000}}));
    EXPECT_EQ(r.transientLoadsIssued, 0u);
    EXPECT_FALSE(core.cache().probe(0x90000));
}

TEST(Core, StraightLineSpeculationAblation)
{
    CoreConfig cfg;
    cfg.straightLineSpeculation = true;
    auto p = prog("b end\nldr x1, [x2]\nend: ret\n");
    Core core(cfg);
    auto r = core.run(p, state({{2, 0x90000}}));
    EXPECT_EQ(r.transientLoadsIssued, 1u);
    EXPECT_TRUE(core.cache().probe(0x90000));
}

TEST(Core, TransientWindowStopsAtControlFlow)
{
    // Wrong path contains a branch: speculation stops there.
    auto p = prog("b.eq x0, x1, end\n"
                  "ldr x2, [x3]\n"
                  "b.eq x2, #0, end\n"
                  "ldr x4, [x5]\n"
                  "end: ret\n");
    Core core;
    for (int i = 0; i < 4; ++i)
        core.run(p, state({{0, 1}, {1, 2}, {3, 0x90000}, {5, 0xa0000}}));
    core.cache().reset();
    auto r = core.run(p,
                      state({{0, 5}, {1, 5}, {3, 0x90000}, {5, 0xa0000}}));
    EXPECT_EQ(r.transientLoadsIssued, 1u);
    EXPECT_FALSE(core.cache().probe(0xa0000));
}

TEST(Core, TransientMarkedInstructionsSkippedArchitecturally)
{
    // A program containing shadow statements (as produced by the
    // instrumentation) must behave as if they were absent.
    bir::Program p = prog("mov x1, #5\n"
                          "@t mov x1, #99\n"
                          "ret\n");
    Core core;
    auto r = core.run(p, ArchState{});
    EXPECT_EQ(r.finalState.regs[1], 5u);
    EXPECT_EQ(r.instructions, 2u);
}

TEST(Core, TimedLoadDistinguishesHitMiss)
{
    Core core;
    const std::uint64_t miss = core.timedLoad(0x80000);
    const std::uint64_t hit = core.timedLoad(0x80000);
    EXPECT_EQ(miss, core.config().missLatency);
    EXPECT_EQ(hit, core.config().hitLatency);
}

TEST(Core, LoadsTrainThePrefetcher)
{
    Core core;
    auto p = prog("ldr x1, [x0]\n"
                  "ldr x2, [x0, #64]\n"
                  "ldr x3, [x0, #128]\n"
                  "ret\n");
    auto r = core.run(p, state({{0, 0x80000}}));
    EXPECT_EQ(r.prefetches, 1u);
    EXPECT_TRUE(core.cache().probe(0x80000 + 192));
}

} // namespace
} // namespace scamv::hw
