/** @file Unit tests for the control-flow graph. */

#include <gtest/gtest.h>

#include "bir/asm.hh"
#include "bir/cfg.hh"

namespace scamv::bir {
namespace {

Program
prog(const char *src)
{
    auto r = assemble(src);
    EXPECT_TRUE(r.ok()) << r.error;
    return r.program;
}

TEST(Cfg, StraightLineIsOneBlock)
{
    Cfg cfg(prog("mov x0, #1\nadd x0, x0, #2\nret\n"));
    ASSERT_EQ(cfg.blocks().size(), 1u);
    EXPECT_EQ(cfg.blocks()[0].first, 0);
    EXPECT_EQ(cfg.blocks()[0].last, 2);
    EXPECT_TRUE(cfg.blocks()[0].succs.empty());
}

TEST(Cfg, DiamondShape)
{
    Cfg cfg(prog("b.eq x0, x1, then\n"
                 "ldr x2, [x0]\n"
                 "b join\n"
                 "then: ldr x3, [x1]\n"
                 "join: ret\n"));
    // Blocks: [0], [1,2], [3], [4]
    ASSERT_EQ(cfg.blocks().size(), 4u);
    EXPECT_EQ(cfg.blocks()[0].succs.size(), 2u);
    EXPECT_TRUE(cfg.acyclic());
    EXPECT_EQ(cfg.pathCount(), 2u);
}

TEST(Cfg, BlockAtAndStartingAt)
{
    Cfg cfg(prog("b.eq x0, x1, t\nldr x2, [x0]\nt: ret\n"));
    EXPECT_EQ(cfg.blockAt(0), 0);
    EXPECT_EQ(cfg.blockAt(1), 1);
    EXPECT_EQ(cfg.blockAt(2), 2);
    EXPECT_EQ(cfg.blockStartingAt(2), 2);
    EXPECT_EQ(cfg.blockStartingAt(1), 1);
    EXPECT_EQ(cfg.blockAt(99), -1);
    EXPECT_EQ(cfg.blockStartingAt(99), -1);
}

TEST(Cfg, LoopIsCyclic)
{
    Cfg cfg(prog("top: add x0, x0, #1\nb.lt x0, #10, top\nret\n"));
    EXPECT_FALSE(cfg.acyclic());
    EXPECT_EQ(cfg.pathCount(), 0u);
}

TEST(Cfg, TwoBranchesFourPaths)
{
    Cfg cfg(prog("b.eq x0, x1, a\n"
                 "a: b.ne x2, x3, b\n"
                 "b: ret\n"));
    EXPECT_TRUE(cfg.acyclic());
    // Branch 1 has both successors leading into branch 2 (target is
    // the fall-through), so paths multiply: 2 * 2 = 4... but both
    // edges of branch 1 reach the same block, giving 2+2 = 4 paths.
    EXPECT_EQ(cfg.pathCount(), 4u);
}

TEST(Cfg, JumpOnlySuccessor)
{
    Cfg cfg(prog("b end\nldr x1, [x0]\nend: ret\n"));
    ASSERT_GE(cfg.blocks().size(), 2u);
    EXPECT_EQ(cfg.blocks()[0].succs.size(), 1u);
    EXPECT_TRUE(cfg.acyclic());
}

TEST(Cfg, BranchToEndHasOneInRangeSuccessor)
{
    Program p;
    p.push(Instr::branchImm(CmpOp::Eq, 0, 0, 2));
    p.push(Instr::halt());
    Cfg cfg(p);
    // Taken edge leaves the program (treated as exit): only the
    // fall-through successor is recorded.
    EXPECT_EQ(cfg.blocks()[0].succs.size(), 1u);
}

} // namespace
} // namespace scamv::bir
