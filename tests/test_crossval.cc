/** @file Property-based cross-validation of the semantic stack: for
 * random template programs and random concrete inputs, the symbolic
 * executor and the hardware core must agree —
 *
 *   1. exactly one symbolic path condition holds per concrete input;
 *   2. evaluating that path's symbolic access addresses reproduces the
 *      core's architectural memory trace exactly;
 *   3. every transient load the core issues appears among the
 *      evaluated symbolic transient addresses (the symbolic model
 *      over-approximates: it assumes full forwarding, the core does
 *      not forward);
 *   4. the repair sampler and the CDCL solver agree with the concrete
 *      evaluator on relation formulas they solve.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "bir/transform.hh"
#include "expr/eval.hh"
#include "gen/templates.hh"
#include "harness/platform.hh"
#include "hw/core.hh"
#include "obs/models.hh"
#include "rel/relation.hh"
#include "smt/solver.hh"
#include "support/faults.hh"
#include "support/metrics.hh"
#include "support/rng.hh"
#include "sym/symexec.hh"

namespace scamv {
namespace {

constexpr std::uint64_t kBoardSeed = 0xb0a2dULL;

/**
 * Build a concrete input: random registers, and a memory assignment
 * mirroring the board's junk fill for every cell the symbolic paths
 * read (so evaluator and core see identical memory).
 */
expr::Assignment
makeInput(Rng &rng, const std::vector<sym::PathResult> &paths)
{
    expr::Assignment a;
    for (int r = 0; r < bir::kNumRegs; ++r) {
        std::uint64_t v = rng.chance(0.8)
                              ? 0x80000 + rng.below(0x80000 / 8) * 8
                              : rng.below(1024);
        a.bvVars["x" + std::to_string(r) + "_1"] = v;
    }
    hw::Memory junk(kBoardSeed);
    // Fixpoint over nested reads (depth <= 3 in the templates).
    for (int round = 0; round < 3; ++round) {
        for (const auto &p : paths) {
            std::vector<expr::Expr> roots{p.cond};
            roots.insert(roots.end(), p.memAddrs.begin(),
                         p.memAddrs.end());
            roots.insert(roots.end(), p.transientLoadAddrs.begin(),
                         p.transientLoadAddrs.end());
            for (expr::Expr root : roots) {
                for (expr::Expr r : expr::collectReads(root)) {
                    // The hardware is word-granular (it masks the low
                    // 3 address bits); the symbolic array is keyed by
                    // the raw address.  Pipeline-generated addresses
                    // are 8-aligned by the region constraint, but the
                    // random inputs here are not — mirror the junk
                    // word under both keys so both sides agree.
                    const std::uint64_t raw =
                        expr::evalBv(r->kids[1], a);
                    const std::uint64_t val = junk.load(raw & ~7ULL);
                    if (!a.mems["mem_1"].contains(raw))
                        a.mems["mem_1"].storeWord(raw, val);
                    if (!a.mems["mem_1"].contains(raw & ~7ULL))
                        a.mems["mem_1"].storeWord(raw & ~7ULL, val);
                }
            }
        }
    }
    return a;
}

hw::ArchState
stateOf(const expr::Assignment &a)
{
    hw::ArchState st;
    for (int r = 0; r < bir::kNumRegs; ++r)
        st.regs[r] = a.bv("x" + std::to_string(r) + "_1");
    return st;
}

class CrossVal : public ::testing::TestWithParam<gen::TemplateKind>
{
};

TEST_P(CrossVal, ExactlyOnePathConditionHolds)
{
    gen::ProgramGenerator g(GetParam(), 101);
    Rng rng(777);
    for (int i = 0; i < 25; ++i) {
        expr::ExprContext ctx;
        bir::Program p = g.next();
        auto annot = obs::makeModel(obs::ModelKind::Mct);
        auto paths = sym::execute(ctx, p, *annot, {"_1"});
        for (int j = 0; j < 4; ++j) {
            expr::Assignment a = makeInput(rng, paths);
            int holds = 0;
            for (const auto &path : paths)
                holds += expr::evalBool(path.cond, a);
            EXPECT_EQ(holds, 1) << p.toString();
        }
    }
}

TEST_P(CrossVal, SymbolicAddressesMatchHardwareTrace)
{
    gen::ProgramGenerator g(GetParam(), 202);
    Rng rng(888);
    for (int i = 0; i < 25; ++i) {
        expr::ExprContext ctx;
        bir::Program p = g.next();
        auto annot = obs::makeModel(obs::ModelKind::Mct);
        auto paths = sym::execute(ctx, p, *annot, {"_1"});
        for (int j = 0; j < 4; ++j) {
            expr::Assignment a = makeInput(rng, paths);
            const sym::PathResult *active = nullptr;
            for (const auto &path : paths)
                if (expr::evalBool(path.cond, a))
                    active = &path;
            ASSERT_NE(active, nullptr);

            std::vector<std::uint64_t> expected;
            for (expr::Expr addr : active->memAddrs)
                expected.push_back(expr::evalBv(addr, a));

            hw::Core core(hw::CoreConfig{}, kBoardSeed);
            for (const auto &[addr, val] :
                 a.mems["mem_1"].entries())
                core.memory().store(addr, val);
            auto run = core.run(p, stateOf(a));
            EXPECT_EQ(run.memTrace, expected) << p.toString();
        }
    }
}

TEST_P(CrossVal, HardwareTransientLoadsWithinSymbolicModel)
{
    if (GetParam() == gen::TemplateKind::D)
        GTEST_SKIP() << "no conditional branches to speculate";
    gen::ProgramGenerator g(GetParam(), 303);
    Rng rng(999);
    int transient_seen = 0;
    for (int i = 0; i < 25; ++i) {
        expr::ExprContext ctx;
        bir::Program p = g.next();
        bir::Program inst = bir::instrumentSpeculation(p);
        auto annot = obs::makeModel(obs::ModelKind::Mspec);
        auto paths = sym::execute(ctx, inst, *annot, {"_1"});
        for (int j = 0; j < 4; ++j) {
            expr::Assignment a = makeInput(rng, paths);
            const sym::PathResult *active = nullptr;
            for (const auto &path : paths)
                if (expr::evalBool(path.cond, a))
                    active = &path;
            ASSERT_NE(active, nullptr);

            std::vector<std::uint64_t> allowed;
            for (expr::Expr addr : active->transientLoadAddrs)
                allowed.push_back(expr::evalBv(addr, a));

            // Mistrain: run the opposite input class a few times so
            // the measured run mispredicts if possible.
            hw::Core core(hw::CoreConfig{}, kBoardSeed);
            for (const auto &[addr, val] : a.mems["mem_1"].entries())
                core.memory().store(addr, val);
            auto run = core.run(p, stateOf(a));
            transient_seen +=
                static_cast<int>(run.transientTrace.size());
            for (std::uint64_t t : run.transientTrace) {
                EXPECT_NE(std::find(allowed.begin(), allowed.end(), t),
                          allowed.end())
                    << "transient access " << t
                    << " not predicted by the model\n"
                    << p.toString();
            }
        }
    }
    // The property must not pass vacuously for speculating templates.
    if (GetParam() != gen::TemplateKind::Stride) {
        EXPECT_GT(transient_seen, 0);
    }
}

TEST_P(CrossVal, SolverModelsSatisfyRelationsConcretely)
{
    gen::ProgramGenerator g(GetParam(), 404);
    for (int i = 0; i < 10; ++i) {
        expr::ExprContext ctx;
        bir::Program p = g.next();
        bir::Program inst = GetParam() == gen::TemplateKind::Stride
                                ? p
                                : bir::instrumentSpeculation(p);
        obs::RefinementPair annot(
            obs::makeModel(GetParam() == gen::TemplateKind::Stride
                               ? obs::ModelKind::Mpart
                               : obs::ModelKind::Mct),
            obs::makeModel(GetParam() == gen::TemplateKind::Stride
                               ? obs::ModelKind::MpartRefined
                               : obs::ModelKind::Mspec));
        auto p1 = sym::execute(ctx, inst, annot, {"_1"});
        auto p2 = sym::execute(ctx, inst, annot, {"_2"});
        rel::RelationConfig rc;
        rc.refine = true;
        rel::RelationSynthesizer rel(ctx, std::move(p1), std::move(p2),
                                     rc);
        for (const auto &pair : rel.pairs()) {
            expr::Expr f = rel.formulaFor(pair);
            smt::SmtSolver solver(ctx, f);
            const smt::Outcome o = solver.solve();
            if (o != smt::Outcome::Sat)
                continue;
            auto model = solver.model();
            EXPECT_TRUE(expr::evalBool(f, model))
                << "model does not satisfy its own relation\n"
                << p.toString();
        }
    }
}

TEST_P(CrossVal, InjectedFlakesOnlyDegradeVerdicts)
{
    // Verdict-safety property under injected measurement noise: a
    // flaky experiment may become *inconclusive*, but injection must
    // never flip a counterexample to an "indistinguishable" pass nor
    // manufacture a counterexample out of agreeing states.
    gen::ProgramGenerator g(GetParam(), 505);
    Rng rng(1234);
    metrics::Registry reg(metrics::ClockMode::Deterministic);
    metrics::ScopedRegistry reg_scope(reg);

    faults::FaultPlan plan;
    plan.rate = 0.3;
    plan.mask = 1u << static_cast<int>(faults::Site::HwFlake);

    int flaky_experiments = 0;
    for (int i = 0; i < 15; ++i) {
        expr::ExprContext ctx;
        bir::Program p = g.next();
        auto annot = obs::makeModel(obs::ModelKind::Mct);
        auto paths = sym::execute(ctx, p, *annot, {"_1"});
        expr::Assignment a = makeInput(rng, paths);

        harness::TestCase identical;
        identical.s1 = harness::inputFromAssignment(a, "_1");
        identical.s2 = identical.s1;
        harness::TestCase differing = identical;
        differing.s2.regs.regs[1] ^= 0x40; // cross a cache line

        for (const harness::TestCase &tc : {identical, differing}) {
            harness::Platform clean_platform(harness::PlatformConfig{},
                                             999);
            const harness::ExperimentResult clean =
                clean_platform.runExperiment(p, tc);
            ASSERT_EQ(clean.flakedReps, 0);
            if (tc.s1.regs.regs == tc.s2.regs.regs)
                ASSERT_EQ(clean.verdict,
                          harness::Verdict::Indistinguishable);

            harness::Platform flaky_platform(harness::PlatformConfig{},
                                             999);
            faults::Injector injector(plan, 42, i);
            faults::ScopedInjector inj_scope(injector);
            const harness::ExperimentResult flaky =
                flaky_platform.runExperiment(p, tc);

            if (flaky.flakedReps == 0) {
                // No injection landed: the verdict is untouched.
                EXPECT_EQ(flaky.verdict, clean.verdict);
                continue;
            }
            ++flaky_experiments;
            // Flaked repetitions can never certify agreement...
            EXPECT_NE(flaky.verdict,
                      harness::Verdict::Indistinguishable);
            // ...nor fabricate a distinguishing experiment.
            if (clean.verdict == harness::Verdict::Indistinguishable)
                EXPECT_EQ(flaky.verdict,
                          harness::Verdict::Inconclusive);
            // A clean counterexample survives at least as
            // inconclusive — it is never flipped to a pass.
            if (clean.verdict == harness::Verdict::Counterexample)
                EXPECT_NE(flaky.verdict,
                          harness::Verdict::Indistinguishable);
        }
    }
    // The property must not pass vacuously.
    EXPECT_GT(flaky_experiments, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Templates, CrossVal,
    ::testing::Values(gen::TemplateKind::Stride, gen::TemplateKind::A,
                      gen::TemplateKind::B, gen::TemplateKind::C,
                      gen::TemplateKind::D),
    [](const ::testing::TestParamInfo<gen::TemplateKind> &info) {
        switch (info.param) {
          case gen::TemplateKind::Stride: return std::string("Stride");
          case gen::TemplateKind::A: return std::string("A");
          case gen::TemplateKind::B: return std::string("B");
          case gen::TemplateKind::C: return std::string("C");
          case gen::TemplateKind::D: return std::string("D");
        }
        return std::string("Unknown");
    });

} // namespace
} // namespace scamv
