/** @file Unit tests for the stride prefetcher (Section 6.1/6.2). */

#include <gtest/gtest.h>

#include "hw/cache.hh"
#include "hw/prefetcher.hh"

namespace scamv::hw {
namespace {

TEST(Prefetcher, TriggersAfterThreeEquidistantAccesses)
{
    Cache c;
    StridePrefetcher pf;
    const std::uint64_t base = 0x80000;
    EXPECT_EQ(pf.observe(base, c), 0);
    EXPECT_EQ(pf.observe(base + 64, c), 0);
    // Third access establishes the stride: prefetch base + 3*64.
    EXPECT_EQ(pf.observe(base + 128, c), 1);
    EXPECT_TRUE(c.probe(base + 192));
}

TEST(Prefetcher, TwoAccessesNeverTrigger)
{
    Cache c;
    StridePrefetcher pf;
    pf.observe(0x80000, c);
    pf.observe(0x80000 + 512, c);
    EXPECT_TRUE(pf.issued().empty());
}

TEST(Prefetcher, IrregularStrideDoesNotTrigger)
{
    Cache c;
    StridePrefetcher pf;
    pf.observe(0x80000, c);
    pf.observe(0x80000 + 64, c);
    pf.observe(0x80000 + 64 + 128, c); // delta changed
    EXPECT_TRUE(pf.issued().empty());
}

TEST(Prefetcher, ZeroStrideIgnored)
{
    Cache c;
    StridePrefetcher pf;
    for (int i = 0; i < 5; ++i)
        pf.observe(0x80000, c);
    EXPECT_TRUE(pf.issued().empty());
}

TEST(Prefetcher, NegativeStrideWorks)
{
    Cache c;
    StridePrefetcher pf;
    pf.observe(0x80000 + 4 * 64, c);
    pf.observe(0x80000 + 3 * 64, c);
    EXPECT_EQ(pf.observe(0x80000 + 2 * 64, c), 1);
    EXPECT_TRUE(c.probe(0x80000 + 64));
}

TEST(Prefetcher, ContinuesPrefetchingAlongStream)
{
    Cache c;
    StridePrefetcher pf;
    const std::uint64_t base = 0x80000;
    int total = 0;
    for (int i = 0; i < 6; ++i)
        total += pf.observe(base + i * 64, c);
    EXPECT_GE(total, 4); // one per access from the third on
}

TEST(Prefetcher, StopsAtPageBoundary)
{
    // Stride approaching the end of a 4 KiB page: the prefetch that
    // would cross into the next page is suppressed (the property that
    // makes page-aligned cache colouring safe, Section 6.2).
    Cache c;
    StridePrefetcher pf;
    const std::uint64_t page_end = 0x81000; // next page base
    pf.observe(page_end - 3 * 64, c);
    pf.observe(page_end - 2 * 64, c);
    EXPECT_EQ(pf.observe(page_end - 64, c), 0);
    EXPECT_FALSE(c.probe(page_end));
}

TEST(Prefetcher, CrossPageAblationSwitch)
{
    PrefetcherConfig cfg;
    cfg.crossPageBoundary = true;
    Cache c;
    StridePrefetcher pf(cfg);
    const std::uint64_t page_end = 0x81000;
    pf.observe(page_end - 3 * 64, c);
    pf.observe(page_end - 2 * 64, c);
    EXPECT_EQ(pf.observe(page_end - 64, c), 1);
    EXPECT_TRUE(c.probe(page_end));
}

TEST(Prefetcher, ConfigurableTrigger)
{
    PrefetcherConfig cfg;
    cfg.trigger = 4;
    Cache c;
    StridePrefetcher pf(cfg);
    const std::uint64_t base = 0x80000;
    EXPECT_EQ(pf.observe(base, c), 0);
    EXPECT_EQ(pf.observe(base + 64, c), 0);
    EXPECT_EQ(pf.observe(base + 128, c), 0); // 3 accesses: not yet
    EXPECT_EQ(pf.observe(base + 192, c), 1); // 4th triggers
}

TEST(Prefetcher, DegreeIssuesMultipleLines)
{
    PrefetcherConfig cfg;
    cfg.degree = 3;
    Cache c;
    StridePrefetcher pf(cfg);
    const std::uint64_t base = 0x80000;
    pf.observe(base, c);
    pf.observe(base + 64, c);
    EXPECT_EQ(pf.observe(base + 128, c), 3);
    EXPECT_TRUE(c.probe(base + 192));
    EXPECT_TRUE(c.probe(base + 256));
    EXPECT_TRUE(c.probe(base + 320));
}

TEST(Prefetcher, DisabledDoesNothing)
{
    PrefetcherConfig cfg;
    cfg.enabled = false;
    Cache c;
    StridePrefetcher pf(cfg);
    for (int i = 0; i < 6; ++i)
        pf.observe(0x80000 + i * 64, c);
    EXPECT_TRUE(pf.issued().empty());
}

TEST(Prefetcher, ResetForgetsStream)
{
    Cache c;
    StridePrefetcher pf;
    pf.observe(0x80000, c);
    pf.observe(0x80000 + 64, c);
    pf.reset();
    EXPECT_EQ(pf.observe(0x80000 + 128, c), 0);
}

TEST(Prefetcher, StrideAcrossColourBoundaryLeaksIntoAr)
{
    // The Mpart counterexample mechanism: accesses in sets 58,59,60
    // (outside AR = 61..127) prefetch set 61, inside AR.
    Cache c;
    StridePrefetcher pf;
    const std::uint64_t base = 0x80000; // set 0
    pf.observe(base + 58 * 64, c);
    pf.observe(base + 59 * 64, c);
    EXPECT_EQ(pf.observe(base + 60 * 64, c), 1);
    EXPECT_TRUE(c.probe(base + 61 * 64));
    EXPECT_EQ(c.geometry().setOf(base + 61 * 64), 61u);
}

} // namespace
} // namespace scamv::hw
