/** @file Tests for the SMT-LIB 2 exporter. */

#include <gtest/gtest.h>

#include "smt/smtlib.hh"

namespace scamv::smt {
namespace {

using expr::Expr;
using expr::ExprContext;

TEST(SmtLib, Constants)
{
    ExprContext ctx;
    EXPECT_EQ(termToSmtLib(ctx.bv(42)), "(_ bv42 64)");
    EXPECT_EQ(termToSmtLib(ctx.tru()), "true");
    EXPECT_EQ(termToSmtLib(ctx.fls()), "false");
}

TEST(SmtLib, SimpleVariablesKeepNames)
{
    ExprContext ctx;
    EXPECT_EQ(termToSmtLib(ctx.bvVar("x0_1")), "x0_1");
    EXPECT_EQ(termToSmtLib(ctx.memVar("mem_1")), "mem_1");
}

TEST(SmtLib, OddNamesAreQuoted)
{
    ExprContext ctx;
    EXPECT_EQ(termToSmtLib(ctx.bvVar("mem_1!rd0")), "|mem_1!rd0|");
}

TEST(SmtLib, OperatorsRenderPrefix)
{
    ExprContext ctx;
    Expr a = ctx.bvVar("a");
    Expr b = ctx.bvVar("b");
    EXPECT_EQ(termToSmtLib(ctx.add(a, b)), "(bvadd a b)");
    EXPECT_EQ(termToSmtLib(ctx.ult(a, b)), "(bvult a b)");
    const std::string ite =
        termToSmtLib(ctx.ite(ctx.ult(a, b), a, b));
    EXPECT_EQ(ite, "(ite (bvult a b) a b)");
}

TEST(SmtLib, MemoryOperations)
{
    ExprContext ctx;
    Expr m = ctx.memVar("m");
    Expr a = ctx.bvVar("a");
    EXPECT_EQ(termToSmtLib(ctx.read(m, a)), "(select m a)");
    const std::string stored =
        termToSmtLib(ctx.read(ctx.store(m, a, ctx.bv(1)),
                              ctx.bvVar("b")));
    EXPECT_EQ(stored, "(select (store m a (_ bv1 64)) b)");
}

TEST(SmtLib, ScriptDeclaresAllVariables)
{
    ExprContext ctx;
    Expr f = ctx.land(
        ctx.eq(ctx.read(ctx.memVar("mem_1"), ctx.bvVar("x0_1")),
               ctx.bv(7)),
        ctx.lnot(ctx.boolVar("flag")));
    const std::string script = toSmtLib(f);
    EXPECT_NE(script.find("(set-logic QF_ABV)"), std::string::npos);
    EXPECT_NE(script.find("(declare-const x0_1 (_ BitVec 64))"),
              std::string::npos);
    EXPECT_NE(script.find("(declare-const mem_1 (Array (_ BitVec 64) "
                          "(_ BitVec 64)))"),
              std::string::npos);
    EXPECT_NE(script.find("(declare-const flag Bool)"),
              std::string::npos);
    EXPECT_NE(script.find("(assert "), std::string::npos);
    EXPECT_NE(script.find("(check-sat)"), std::string::npos);
}

TEST(SmtLib, BalancedParentheses)
{
    ExprContext ctx;
    Expr a = ctx.bvVar("a");
    Expr f = ctx.implies(ctx.ult(a, ctx.bv(10)),
                         ctx.eq(ctx.bvAnd(a, ctx.bv(7)), ctx.bv(4)));
    const std::string script = toSmtLib(f);
    int depth = 0;
    for (char c : script) {
        if (c == '(')
            ++depth;
        if (c == ')')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

} // namespace
} // namespace scamv::smt
