/** @file Unit tests for the experiment platform and Flush+Reload. */

#include <gtest/gtest.h>

#include "bir/asm.hh"
#include "harness/flush_reload.hh"
#include "harness/platform.hh"

namespace scamv::harness {
namespace {

bir::Program
prog(const char *src)
{
    auto r = bir::assemble(src);
    EXPECT_TRUE(r.ok()) << r.error;
    return r.program;
}

ProgramInput
input(std::initializer_list<std::pair<int, std::uint64_t>> regs,
      MemInit mem = {})
{
    ProgramInput in;
    for (auto [r, v] : regs)
        in.regs.regs[r] = v;
    in.mem = std::move(mem);
    return in;
}

TEST(Platform, IdenticalStatesIndistinguishable)
{
    Platform platform(PlatformConfig{});
    auto p = prog("ldr x1, [x0]\nret\n");
    TestCase tc;
    tc.s1 = input({{0, 0x80000}});
    tc.s2 = input({{0, 0x80000}});
    auto r = platform.runExperiment(p, tc);
    EXPECT_EQ(r.verdict, Verdict::Indistinguishable);
    EXPECT_EQ(r.differingReps, 0);
    EXPECT_EQ(r.totalReps, 10);
}

TEST(Platform, DifferentLinesDistinguishable)
{
    Platform platform(PlatformConfig{});
    auto p = prog("ldr x1, [x0]\nret\n");
    TestCase tc;
    tc.s1 = input({{0, 0x80000}});
    tc.s2 = input({{0, 0x80000 + 64}});
    auto r = platform.runExperiment(p, tc);
    EXPECT_EQ(r.verdict, Verdict::Counterexample);
    EXPECT_EQ(r.differingReps, r.totalReps);
}

TEST(Platform, VisibleRangeRestrictsObservation)
{
    PlatformConfig cfg;
    cfg.visibleLoSet = 61;
    cfg.visibleHiSet = 127;
    Platform platform(cfg);
    auto p = prog("ldr x1, [x0]\nret\n");
    TestCase tc;
    // Both addresses map to sets < 61: invisible to the attacker.
    tc.s1 = input({{0, 0x80000}});
    tc.s2 = input({{0, 0x80000 + 10 * 64}});
    EXPECT_EQ(platform.runExperiment(p, tc).verdict,
              Verdict::Indistinguishable);
    // Addresses in the visible range are distinguishable.
    tc.s1 = input({{0, 0x80000 + 70 * 64}});
    tc.s2 = input({{0, 0x80000 + 80 * 64}});
    EXPECT_EQ(platform.runExperiment(p, tc).verdict,
              Verdict::Counterexample);
}

TEST(Platform, MemoryInitializationApplied)
{
    Platform platform(PlatformConfig{});
    // Pointer chase: the loaded value is the next address.
    auto p = prog("ldr x1, [x0]\nldr x2, [x1]\nret\n");
    TestCase tc;
    tc.s1 = input({{0, 0x80000}}, {{0x80000, 0x90000}});
    tc.s2 = input({{0, 0x80000}}, {{0x80000, 0xa0000}});
    EXPECT_EQ(platform.runExperiment(p, tc).verdict,
              Verdict::Counterexample);
    // Same pointer: indistinguishable.
    tc.s2 = input({{0, 0x80000}}, {{0x80000, 0x90000}});
    EXPECT_EQ(platform.runExperiment(p, tc).verdict,
              Verdict::Indistinguishable);
}

TEST(Platform, PrefetchSpillDetectedAcrossColourBoundary)
{
    // The Mpart counterexample end-to-end: strides outside AR whose
    // prefetch lands inside AR for s1 but not for s2.
    PlatformConfig cfg;
    cfg.visibleLoSet = 61;
    cfg.visibleHiSet = 127;
    Platform platform(cfg);
    auto p = prog("ldr x1, [x0]\n"
                  "ldr x2, [x0, #64]\n"
                  "ldr x3, [x0, #128]\n"
                  "ret\n");
    TestCase tc;
    // s1 strides sets 58,59,60 -> prefetch 61 (visible!).
    tc.s1 = input({{0, 0x80000 + 58 * 64}});
    // s2 strides sets 10,11,12 -> prefetch 13 (invisible).
    tc.s2 = input({{0, 0x80000 + 10 * 64}});
    EXPECT_EQ(platform.runExperiment(p, tc).verdict,
              Verdict::Counterexample);
}

TEST(Platform, TrainingEnablesSpeculativeDistinction)
{
    // SiSCloak end-to-end: architecturally equivalent states that
    // differ only in the speculatively accessed address.
    Platform platform(PlatformConfig{});
    auto p = prog("ldr x2, [x0, x1]\n"
                  "b.ne x1, x4, end\n"
                  "ldr x6, [x5, x2]\n"
                  "end: ret\n");
    TestCase tc;
    // Branch taken in both states (x1 != x4): body only speculated.
    // mem[x0+x1] differs: transient load address differs.
    tc.s1 = input({{0, 0x80000}, {1, 8}, {4, 99}, {5, 0}},
                  {{0x80008, 0x90000}});
    tc.s2 = input({{0, 0x80000}, {1, 8}, {4, 99}, {5, 0}},
                  {{0x80008, 0xa0000}});
    // Training input takes the fall-through (x1 == x4).
    ProgramInput train = input({{0, 0x80000}, {1, 8}, {4, 8}, {5, 0}},
                               {{0x80008, 0x88000}});
    auto with_training = platform.runExperiment(p, tc, train);
    EXPECT_EQ(with_training.verdict, Verdict::Counterexample);
    // Without training the branch is predicted correctly (not-taken
    // initial counters never predict taken) — no transient leak.
    auto without = platform.runExperiment(p, tc);
    EXPECT_EQ(without.verdict, Verdict::Indistinguishable);
}

TEST(Platform, NoiseProducesInconclusives)
{
    PlatformConfig cfg;
    cfg.noiseProbability = 0.5; // heavy interference
    Platform platform(cfg, 7);
    auto p = prog("ldr x1, [x0]\nret\n");
    TestCase tc;
    tc.s1 = input({{0, 0x80000}});
    tc.s2 = input({{0, 0x80000}});
    int inconclusive = 0;
    for (int i = 0; i < 20; ++i) {
        auto r = platform.runExperiment(p, tc);
        inconclusive += r.verdict == Verdict::Inconclusive;
    }
    EXPECT_GT(inconclusive, 0);
}

TEST(Platform, NoNoiseNoInconclusives)
{
    Platform platform(PlatformConfig{});
    auto p = prog("ldr x1, [x0]\nret\n");
    TestCase tc;
    tc.s1 = input({{0, 0x80000}});
    tc.s2 = input({{0, 0x81000}});
    for (int i = 0; i < 5; ++i)
        EXPECT_NE(platform.runExperiment(p, tc).verdict,
                  Verdict::Inconclusive);
}

TEST(Platform, InputFromAssignmentExtractsState)
{
    expr::Assignment a;
    a.bvVars["x0_1"] = 123;
    a.bvVars["x5_1"] = 456;
    a.bvVars["x0_2"] = 789; // other state, ignored for suffix _1
    a.mems["mem_1"].storeWord(0x1000, 42);
    auto in = inputFromAssignment(a, "_1");
    EXPECT_EQ(in.regs.regs[0], 123u);
    EXPECT_EQ(in.regs.regs[5], 456u);
    EXPECT_EQ(in.regs.regs[7], 0u);
    ASSERT_EQ(in.mem.size(), 1u);
    EXPECT_EQ(in.mem[0].first, 0x1000u);
    EXPECT_EQ(in.mem[0].second, 42u);
}

TEST(FlushReload, RecoversVictimAccess)
{
    hw::Core core;
    const std::uint64_t array_b = 0x90000;
    FlushReloadAttacker attacker(array_b, 16);
    attacker.flush(core);
    // Victim touches line 5 of the monitored array.
    core.cache().access(array_b + 5 * 64);
    auto hot = attacker.hotLines(core);
    ASSERT_EQ(hot.size(), 1u);
    EXPECT_EQ(hot[0], 5);
}

TEST(FlushReload, NoAccessNoHotLines)
{
    hw::Core core;
    FlushReloadAttacker attacker(0x90000, 8);
    attacker.flush(core);
    EXPECT_TRUE(attacker.hotLines(core).empty());
}

TEST(FlushReload, ReloadLatenciesSplitAroundThreshold)
{
    hw::Core core;
    FlushReloadAttacker attacker(0x90000, 4);
    attacker.flush(core);
    core.cache().access(0x90000);
    auto lat = attacker.reload(core);
    ASSERT_EQ(lat.size(), 4u);
    EXPECT_EQ(lat[0], core.config().hitLatency);
    for (int i = 1; i < 4; ++i)
        EXPECT_EQ(lat[i], core.config().missLatency);
}

} // namespace
} // namespace scamv::harness
