/** @file Unit tests for the set-associative LRU cache. */

#include <gtest/gtest.h>

#include "hw/cache.hh"

namespace scamv::hw {
namespace {

TEST(Cache, MissThenHit)
{
    Cache c;
    EXPECT_FALSE(c.access(0x80000));
    EXPECT_TRUE(c.access(0x80000));
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 1u);
}

TEST(Cache, SameLineDifferentOffsetHits)
{
    Cache c;
    c.access(0x80000);
    EXPECT_TRUE(c.access(0x80000 + 63)); // same 64-byte line
    EXPECT_FALSE(c.access(0x80000 + 64)); // next line
}

TEST(Cache, ProbeDoesNotAllocate)
{
    Cache c;
    EXPECT_FALSE(c.probe(0x80000));
    EXPECT_FALSE(c.access(0x80000)); // still a miss
    EXPECT_TRUE(c.probe(0x80000));
}

TEST(Cache, FlushLineRemoves)
{
    Cache c;
    c.access(0x80000);
    c.flushLine(0x80000);
    EXPECT_FALSE(c.probe(0x80000));
}

TEST(Cache, ResetClearsEverything)
{
    Cache c;
    c.access(0x80000);
    c.access(0x90000);
    c.reset();
    EXPECT_FALSE(c.probe(0x80000));
    EXPECT_FALSE(c.probe(0x90000));
}

TEST(Cache, AssociativityHoldsConflictingTags)
{
    Cache c; // 4 ways
    const obs::CacheGeometry g = c.geometry();
    const std::uint64_t set_stride = g.lineBytes * g.numSets; // same set
    for (int i = 0; i < 4; ++i)
        c.access(0x80000 + i * set_stride);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(c.probe(0x80000 + i * set_stride)) << i;
}

TEST(Cache, LruEviction)
{
    Cache c;
    const obs::CacheGeometry g = c.geometry();
    const std::uint64_t stride = g.lineBytes * g.numSets;
    for (int i = 0; i < 4; ++i)
        c.access(0x80000 + i * stride);
    c.access(0x80000); // refresh way 0: way 1 is now LRU
    c.access(0x80000 + 4 * stride); // evicts tag 1
    EXPECT_TRUE(c.probe(0x80000));
    EXPECT_FALSE(c.probe(0x80000 + 1 * stride));
    EXPECT_TRUE(c.probe(0x80000 + 2 * stride));
    EXPECT_TRUE(c.probe(0x80000 + 4 * stride));
}

TEST(Cache, SnapshotReflectsContents)
{
    Cache c;
    c.access(0x80000);          // set 0 (0x80000 is set-aligned)
    c.access(0x80000 + 5 * 64); // set 5
    const CacheState snap = c.snapshot();
    ASSERT_EQ(snap.size(), 128u);
    const auto g = c.geometry();
    EXPECT_EQ(snap[g.setOf(0x80000)].size(), 1u);
    EXPECT_EQ(snap[g.setOf(0x80000 + 5 * 64)].size(), 1u);
}

TEST(Cache, SnapshotRangeRestricts)
{
    Cache c;
    const auto g = c.geometry();
    // Addresses with set index 10 and 100.
    c.access(0x80000 + 10 * 64);
    c.access(0x80000 + 100 * 64);
    ASSERT_EQ(g.setOf(0x80000 + 10 * 64), 10u);
    const CacheState snap = c.snapshot(61, 127);
    ASSERT_EQ(snap.size(), 67u);
    EXPECT_EQ(snap[100 - 61].size(), 1u);
    // Set 10 excluded entirely.
    std::size_t total = 0;
    for (const auto &s : snap)
        total += s.size();
    EXPECT_EQ(total, 1u);
}

TEST(Cache, SnapshotsAreOrderCanonical)
{
    Cache a, b;
    const auto g = a.geometry();
    const std::uint64_t stride = g.lineBytes * g.numSets;
    a.access(0x80000);
    a.access(0x80000 + stride);
    b.access(0x80000 + stride);
    b.access(0x80000);
    EXPECT_TRUE(sameCacheState(a.snapshot(), b.snapshot()));
}

TEST(Cache, DifferentContentsDetected)
{
    Cache a, b;
    a.access(0x80000);
    b.access(0x80000 + 64);
    EXPECT_FALSE(sameCacheState(a.snapshot(), b.snapshot()));
}

TEST(Cache, CustomGeometry)
{
    obs::CacheGeometry g;
    g.lineBytes = 32;
    g.numSets = 16;
    g.ways = 2;
    Cache c(g);
    EXPECT_FALSE(c.access(0));
    EXPECT_FALSE(c.access(32 * 16)); // same set, different tag
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.access(2 * 32 * 16)); // evicts LRU (tag 0)
    EXPECT_FALSE(c.probe(0));
}

} // namespace
} // namespace scamv::hw
