/** @file Unit tests for the support library (rng, tables, stats). */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "support/rng.hh"
#include "support/stopwatch.hh"
#include "support/table.hh"

namespace scamv {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng r(3);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t v = r.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values hit
}

TEST(Rng, ChanceExtremes)
{
    Rng r(11);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / static_cast<double>(n), 0.25, 0.02);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(17);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r(19);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
    auto sorted = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(23);
    Rng child = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == child.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, PickReturnsElement)
{
    Rng r(29);
    const std::vector<int> v{10, 20, 30};
    for (int i = 0; i < 50; ++i) {
        const int x = r.pick(v);
        EXPECT_TRUE(x == 10 || x == 20 || x == 30);
    }
}

TEST(RunningStat, Accumulates)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.add(2.0);
    s.add(4.0);
    s.add(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.total(), 12.0);
}

TEST(Stopwatch, MeasuresNonNegative)
{
    Stopwatch w;
    EXPECT_GE(w.seconds(), 0.0);
    EXPECT_GE(w.milliseconds(), 0.0);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, CsvEscapesSpecials)
{
    TextTable t;
    t.addRow({"a,b", "say \"hi\"", "plain"});
    const std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
    EXPECT_NE(csv.find("plain"), std::string::npos);
}

TEST(Format, FmtDouble)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
}

TEST(Format, FmtRatioHandlesZeroDenominator)
{
    EXPECT_EQ(fmtRatio(10.0, 0.0), "-");
    EXPECT_EQ(fmtRatio(10.0, 5.0), "2.0x");
}

} // namespace
} // namespace scamv
