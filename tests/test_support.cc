/** @file Unit tests for the support library (rng, tables, stats,
 * validated environment parsing). */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>

#include "support/env.hh"
#include "support/rng.hh"
#include "support/stopwatch.hh"
#include "support/table.hh"

namespace scamv {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng r(3);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t v = r.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values hit
}

TEST(Rng, ChanceExtremes)
{
    Rng r(11);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / static_cast<double>(n), 0.25, 0.02);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(17);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r(19);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
    auto sorted = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(23);
    Rng child = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == child.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, PickReturnsElement)
{
    Rng r(29);
    const std::vector<int> v{10, 20, 30};
    for (int i = 0; i < 50; ++i) {
        const int x = r.pick(v);
        EXPECT_TRUE(x == 10 || x == 20 || x == 30);
    }
}

TEST(RunningStat, Accumulates)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.add(2.0);
    s.add(4.0);
    s.add(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.total(), 12.0);
}

TEST(Stopwatch, MeasuresNonNegative)
{
    Stopwatch w;
    EXPECT_GE(w.seconds(), 0.0);
    EXPECT_GE(w.milliseconds(), 0.0);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, CsvEscapesSpecials)
{
    TextTable t;
    t.addRow({"a,b", "say \"hi\"", "plain"});
    const std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
    EXPECT_NE(csv.find("plain"), std::string::npos);
}

TEST(Format, FmtDouble)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
}

TEST(Format, FmtRatioHandlesZeroDenominator)
{
    EXPECT_EQ(fmtRatio(10.0, 0.0), "-");
    EXPECT_EQ(fmtRatio(10.0, 5.0), "2.0x");
}

TEST(Env, UnsetVariableIsNullopt)
{
    unsetenv("SCAMV_TEST_ENV");
    EXPECT_FALSE(envLong("SCAMV_TEST_ENV").has_value());
    EXPECT_FALSE(envDouble("SCAMV_TEST_ENV").has_value());
}

TEST(Env, ParsesWellFormedValues)
{
    setenv("SCAMV_TEST_ENV", "42", 1);
    EXPECT_EQ(envLong("SCAMV_TEST_ENV").value(), 42);
    setenv("SCAMV_TEST_ENV", "-7", 1);
    EXPECT_EQ(envLong("SCAMV_TEST_ENV").value(), -7);
    setenv("SCAMV_TEST_ENV", "0.125", 1);
    EXPECT_DOUBLE_EQ(envDouble("SCAMV_TEST_ENV").value(), 0.125);
    setenv("SCAMV_TEST_ENV", "1e3", 1);
    EXPECT_DOUBLE_EQ(envDouble("SCAMV_TEST_ENV").value(), 1000.0);
    // Trailing whitespace is tolerated (a quoted "4 " in a shell).
    setenv("SCAMV_TEST_ENV", "4 ", 1);
    EXPECT_EQ(envLong("SCAMV_TEST_ENV").value(), 4);
    unsetenv("SCAMV_TEST_ENV");
}

TEST(Env, RejectsTrailingGarbage)
{
    // atoi-style truncation ("4x" -> 4) silently mangles the user's
    // setting; the validated layer must reject the value instead.
    setenv("SCAMV_TEST_ENV", "4x", 1);
    EXPECT_FALSE(envLong("SCAMV_TEST_ENV").has_value());
    setenv("SCAMV_TEST_ENV", "1.5threads", 1);
    EXPECT_FALSE(envDouble("SCAMV_TEST_ENV").has_value());
    setenv("SCAMV_TEST_ENV", "abc", 1);
    EXPECT_FALSE(envLong("SCAMV_TEST_ENV").has_value());
    EXPECT_FALSE(envDouble("SCAMV_TEST_ENV").has_value());
    setenv("SCAMV_TEST_ENV", "", 1);
    EXPECT_FALSE(envLong("SCAMV_TEST_ENV").has_value());
    unsetenv("SCAMV_TEST_ENV");
}

TEST(Env, RejectsOutOfRangeMagnitudes)
{
    // strtol saturates to LONG_MAX with ERANGE; saturation is not
    // what the user asked for, so the value is rejected.
    setenv("SCAMV_TEST_ENV", "99999999999999999999999999", 1);
    EXPECT_FALSE(envLong("SCAMV_TEST_ENV").has_value());
    setenv("SCAMV_TEST_ENV", "1e400", 1);
    EXPECT_FALSE(envDouble("SCAMV_TEST_ENV").has_value());
    setenv("SCAMV_TEST_ENV", "inf", 1);
    EXPECT_FALSE(envDouble("SCAMV_TEST_ENV").has_value());
    unsetenv("SCAMV_TEST_ENV");
}

TEST(Env, BoundedOverloadsEnforceRange)
{
    setenv("SCAMV_TEST_ENV", "5", 1);
    EXPECT_EQ(envLong("SCAMV_TEST_ENV", 1, 10).value(), 5);
    EXPECT_FALSE(envLong("SCAMV_TEST_ENV", 6, 10).has_value());
    setenv("SCAMV_TEST_ENV", "0.5", 1);
    EXPECT_DOUBLE_EQ(envDouble("SCAMV_TEST_ENV", 0.0, 1.0).value(),
                     0.5);
    EXPECT_FALSE(envDouble("SCAMV_TEST_ENV", 0.6, 1.0).has_value());
    unsetenv("SCAMV_TEST_ENV");
}

TEST(Env, WarningsNameTheVariable)
{
    // A rejected setting must be traceable to its variable.
    setenv("SCAMV_TEST_ENV", "4x", 1);
    ::testing::internal::CaptureStderr();
    EXPECT_FALSE(envLong("SCAMV_TEST_ENV").has_value());
    const std::string out =
        ::testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("SCAMV_TEST_ENV"), std::string::npos) << out;
    EXPECT_NE(out.find("4x"), std::string::npos) << out;
    unsetenv("SCAMV_TEST_ENV");
}

} // namespace
} // namespace scamv
