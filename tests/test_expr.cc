/** @file Unit tests for the hash-consed expression DAG. */

#include <gtest/gtest.h>

#include "expr/expr.hh"

namespace scamv::expr {
namespace {

class ExprTest : public ::testing::Test
{
  protected:
    ExprContext ctx;
};

TEST_F(ExprTest, ConstantsAreInterned)
{
    EXPECT_EQ(ctx.bv(42), ctx.bv(42));
    EXPECT_NE(ctx.bv(42), ctx.bv(43));
    EXPECT_EQ(ctx.tru(), ctx.boolConst(true));
    EXPECT_EQ(ctx.fls(), ctx.boolConst(false));
    EXPECT_EQ(ctx.zero(), ctx.bv(0));
}

TEST_F(ExprTest, VariablesInternByName)
{
    EXPECT_EQ(ctx.bvVar("x0"), ctx.bvVar("x0"));
    EXPECT_NE(ctx.bvVar("x0"), ctx.bvVar("x1"));
    EXPECT_NE(ctx.bvVar("x0"), ctx.boolVar("x0"));
}

TEST_F(ExprTest, StructuralSharing)
{
    Expr a = ctx.bvVar("a");
    Expr b = ctx.bvVar("b");
    EXPECT_EQ(ctx.add(a, b), ctx.add(a, b));
}

TEST_F(ExprTest, ConstantFoldingArithmetic)
{
    EXPECT_EQ(ctx.add(ctx.bv(2), ctx.bv(3)), ctx.bv(5));
    EXPECT_EQ(ctx.sub(ctx.bv(2), ctx.bv(3)), ctx.bv(~0ULL));
    EXPECT_EQ(ctx.mul(ctx.bv(6), ctx.bv(7)), ctx.bv(42));
    EXPECT_EQ(ctx.bvAnd(ctx.bv(0xF0), ctx.bv(0x3C)), ctx.bv(0x30));
    EXPECT_EQ(ctx.bvOr(ctx.bv(0xF0), ctx.bv(0x0F)), ctx.bv(0xFF));
    EXPECT_EQ(ctx.bvXor(ctx.bv(0xFF), ctx.bv(0x0F)), ctx.bv(0xF0));
    EXPECT_EQ(ctx.shl(ctx.bv(1), ctx.bv(6)), ctx.bv(64));
    EXPECT_EQ(ctx.lshr(ctx.bv(128), ctx.bv(6)), ctx.bv(2));
}

TEST_F(ExprTest, AshrIsArithmetic)
{
    EXPECT_EQ(ctx.ashr(ctx.bv(0x8000000000000000ULL), ctx.bv(63)),
              ctx.bv(~0ULL));
    EXPECT_EQ(ctx.ashr(ctx.bv(64), ctx.bv(3)), ctx.bv(8));
}

TEST_F(ExprTest, NeutralElements)
{
    Expr a = ctx.bvVar("a");
    EXPECT_EQ(ctx.add(a, ctx.bv(0)), a);
    EXPECT_EQ(ctx.add(ctx.bv(0), a), a);
    EXPECT_EQ(ctx.sub(a, ctx.bv(0)), a);
    EXPECT_EQ(ctx.mul(a, ctx.bv(1)), a);
    EXPECT_EQ(ctx.mul(a, ctx.bv(0)), ctx.zero());
    EXPECT_EQ(ctx.bvAnd(a, ctx.bv(UINT64_MAX)), a);
    EXPECT_EQ(ctx.bvAnd(a, ctx.zero()), ctx.zero());
    EXPECT_EQ(ctx.bvOr(a, ctx.zero()), a);
    EXPECT_EQ(ctx.bvXor(a, ctx.zero()), a);
    EXPECT_EQ(ctx.shl(a, ctx.zero()), a);
}

TEST_F(ExprTest, SelfCancellation)
{
    Expr a = ctx.bvVar("a");
    EXPECT_EQ(ctx.sub(a, a), ctx.zero());
    EXPECT_EQ(ctx.bvXor(a, a), ctx.zero());
    EXPECT_EQ(ctx.bvAnd(a, a), a);
    EXPECT_EQ(ctx.bvOr(a, a), a);
    EXPECT_EQ(ctx.eq(a, a), ctx.tru());
    EXPECT_EQ(ctx.ult(a, a), ctx.fls());
    EXPECT_EQ(ctx.ule(a, a), ctx.tru());
}

TEST_F(ExprTest, DoubleNegations)
{
    Expr a = ctx.bvVar("a");
    EXPECT_EQ(ctx.bvNot(ctx.bvNot(a)), a);
    EXPECT_EQ(ctx.neg(ctx.neg(a)), a);
    Expr p = ctx.boolVar("p");
    EXPECT_EQ(ctx.lnot(ctx.lnot(p)), p);
}

TEST_F(ExprTest, BooleanShortCircuits)
{
    Expr p = ctx.boolVar("p");
    EXPECT_EQ(ctx.land(ctx.tru(), p), p);
    EXPECT_EQ(ctx.land(ctx.fls(), p), ctx.fls());
    EXPECT_EQ(ctx.lor(ctx.tru(), p), ctx.tru());
    EXPECT_EQ(ctx.lor(ctx.fls(), p), p);
    EXPECT_EQ(ctx.implies(ctx.fls(), p), ctx.tru());
    EXPECT_EQ(ctx.implies(p, p), ctx.tru());
}

TEST_F(ExprTest, IteSimplification)
{
    Expr a = ctx.bvVar("a");
    Expr b = ctx.bvVar("b");
    Expr p = ctx.boolVar("p");
    EXPECT_EQ(ctx.ite(ctx.tru(), a, b), a);
    EXPECT_EQ(ctx.ite(ctx.fls(), a, b), b);
    EXPECT_EQ(ctx.ite(p, a, a), a);
}

TEST_F(ExprTest, ComparisonConstantFolding)
{
    EXPECT_EQ(ctx.ult(ctx.bv(1), ctx.bv(2)), ctx.tru());
    EXPECT_EQ(ctx.ule(ctx.bv(2), ctx.bv(2)), ctx.tru());
    // -1 (unsigned max) is less than 0 signed.
    EXPECT_EQ(ctx.slt(ctx.bv(~0ULL), ctx.bv(0)), ctx.tru());
    EXPECT_EQ(ctx.ult(ctx.bv(~0ULL), ctx.bv(0)), ctx.fls());
    EXPECT_EQ(ctx.sle(ctx.bv(5), ctx.bv(5)), ctx.tru());
}

TEST_F(ExprTest, ReadOverWriteSameAddress)
{
    Expr mem = ctx.memVar("m");
    Expr a = ctx.bvVar("a");
    Expr v = ctx.bvVar("v");
    EXPECT_EQ(ctx.read(ctx.store(mem, a, v), a), v);
}

TEST_F(ExprTest, ReadOverWriteDistinctConstants)
{
    Expr mem = ctx.memVar("m");
    Expr v = ctx.bvVar("v");
    Expr stored = ctx.store(mem, ctx.bv(8), v);
    // Reading a provably different constant address skips the store.
    EXPECT_EQ(ctx.read(stored, ctx.bv(16)), ctx.read(mem, ctx.bv(16)));
}

TEST_F(ExprTest, ReadOverWriteUnknownAliasKept)
{
    Expr mem = ctx.memVar("m");
    Expr a = ctx.bvVar("a");
    Expr b = ctx.bvVar("b");
    Expr v = ctx.bvVar("v");
    Expr r = ctx.read(ctx.store(mem, a, v), b);
    EXPECT_EQ(r->kind, Kind::Read);
    EXPECT_EQ(r->kids[0]->kind, Kind::Store);
}

TEST_F(ExprTest, StoreCollapsesSameAddress)
{
    Expr mem = ctx.memVar("m");
    Expr a = ctx.bvVar("a");
    Expr s = ctx.store(ctx.store(mem, a, ctx.bv(1)), a, ctx.bv(2));
    EXPECT_EQ(s->kind, Kind::Store);
    EXPECT_EQ(s->kids[0], mem); // inner store elided
    EXPECT_EQ(s->kids[2], ctx.bv(2));
}

TEST_F(ExprTest, CollectVarsFindsAllLeaves)
{
    Expr a = ctx.bvVar("a");
    Expr b = ctx.bvVar("b");
    Expr m = ctx.memVar("m");
    Expr e = ctx.eq(ctx.add(a, b), ctx.read(m, a));
    auto vars = collectVars(e);
    EXPECT_EQ(vars.size(), 3u);
}

TEST_F(ExprTest, CollectReadsDeduplicates)
{
    Expr m = ctx.memVar("m");
    Expr a = ctx.bvVar("a");
    Expr r = ctx.read(m, a);
    Expr e = ctx.eq(ctx.add(r, r), ctx.bv(4));
    EXPECT_EQ(collectReads(e).size(), 1u);
}

TEST_F(ExprTest, SubstituteReplacesAndSimplifies)
{
    Expr a = ctx.bvVar("a");
    Expr b = ctx.bvVar("b");
    Expr e = ctx.add(a, b);
    std::unordered_map<Expr, Expr> map{{a, ctx.bv(2)}, {b, ctx.bv(3)}};
    EXPECT_EQ(substitute(ctx, e, map), ctx.bv(5));
}

TEST_F(ExprTest, SubstituteLeavesUntouchedSubterms)
{
    Expr a = ctx.bvVar("a");
    Expr b = ctx.bvVar("b");
    Expr e = ctx.add(a, b);
    std::unordered_map<Expr, Expr> map{{ctx.bvVar("c"), ctx.bv(1)}};
    EXPECT_EQ(substitute(ctx, e, map), e);
}

TEST_F(ExprTest, ToStringRendersLeavesAndOps)
{
    Expr a = ctx.bvVar("a");
    const std::string s = toString(ctx.add(a, ctx.bv(16)));
    EXPECT_NE(s.find("add"), std::string::npos);
    EXPECT_NE(s.find("a"), std::string::npos);
    EXPECT_NE(s.find("0x10"), std::string::npos);
}

TEST_F(ExprTest, DagSizeCountsSharedOnce)
{
    Expr a = ctx.bvVar("a");
    Expr sum = ctx.add(a, a);
    EXPECT_EQ(dagSize(sum), 2u); // `a` counted once + add node
}

TEST_F(ExprTest, ConjAndDisjOfLists)
{
    Expr p = ctx.boolVar("p");
    Expr q = ctx.boolVar("q");
    EXPECT_EQ(ctx.conj({}), ctx.tru());
    EXPECT_EQ(ctx.disj({}), ctx.fls());
    EXPECT_EQ(ctx.conj({p}), p);
    EXPECT_EQ(ctx.disj({p, q}), ctx.lor(p, q));
}

TEST_F(ExprTest, EqIsOrderCanonical)
{
    Expr a = ctx.bvVar("a");
    Expr b = ctx.bvVar("b");
    EXPECT_EQ(ctx.eq(a, b), ctx.eq(b, a));
    EXPECT_EQ(ctx.land(a == a ? ctx.boolVar("p") : ctx.boolVar("q"),
                       ctx.boolVar("r")),
              ctx.land(ctx.boolVar("r"), ctx.boolVar("p")));
}

} // namespace
} // namespace scamv::expr
