/** @file Unit tests for the textual assembler. */

#include <gtest/gtest.h>

#include "bir/asm.hh"

namespace scamv::bir {
namespace {

TEST(Asm, LoadForms)
{
    auto r = assemble("ldr x2, [x0, x1]\n"
                      "ldr x3, [x0, #16]\n"
                      "ldr x4, [x0]\n"
                      "ret\n");
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_EQ(r.program.size(), 4u);
    EXPECT_EQ(r.program[0].kind, InstrKind::Load);
    EXPECT_FALSE(r.program[0].useImm);
    EXPECT_EQ(r.program[0].rm, 1);
    EXPECT_TRUE(r.program[1].useImm);
    EXPECT_EQ(r.program[1].imm, 16u);
    EXPECT_TRUE(r.program[2].useImm);
    EXPECT_EQ(r.program[2].imm, 0u);
}

TEST(Asm, StoreAndAlu)
{
    auto r = assemble("str x2, [x1, x3]\n"
                      "add x4, x5, x6\n"
                      "eor x4, x4, #255\n"
                      "mov x7, #0x1000\n"
                      "ret\n");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.program[0].kind, InstrKind::Store);
    EXPECT_EQ(r.program[1].aluOp, AluOp::Add);
    EXPECT_EQ(r.program[2].aluOp, AluOp::Eor);
    EXPECT_EQ(r.program[2].imm, 255u);
    EXPECT_EQ(r.program[3].kind, InstrKind::MovImm);
    EXPECT_EQ(r.program[3].imm, 0x1000u);
}

TEST(Asm, BranchesAndLabels)
{
    auto r = assemble("b.lt x0, x1, end\n"
                      "ldr x2, [x0]\n"
                      "end: ret\n");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.program[0].kind, InstrKind::Branch);
    EXPECT_EQ(r.program[0].cmpOp, CmpOp::Slt);
    EXPECT_EQ(r.program[0].target, 2);
}

TEST(Asm, ForwardAndBackwardLabels)
{
    auto r = assemble("start: ldr x1, [x0]\n"
                      "b.eq x1, #0, start\n"
                      "b done\n"
                      "ldr x2, [x0]\n"
                      "done: ret\n");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.program[1].target, 0);
    EXPECT_EQ(r.program[2].kind, InstrKind::Jump);
    EXPECT_EQ(r.program[2].target, 4);
}

TEST(Asm, ImmediateBases)
{
    auto r = assemble("mov x0, #42\nmov x1, #0xff\nmov x2, #-8\nret\n");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.program[0].imm, 42u);
    EXPECT_EQ(r.program[1].imm, 0xffu);
    EXPECT_EQ(r.program[2].imm, static_cast<std::uint64_t>(-8));
}

TEST(Asm, CommentsAndBlankLines)
{
    auto r = assemble("; full-line comment\n"
                      "\n"
                      "mov x0, #1 // trailing comment\n"
                      "ret ; done\n");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.program.size(), 2u);
}

TEST(Asm, TransientMarker)
{
    auto r = assemble("@t ldr x1, [x0]\nret\n");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.program[0].transient);
    EXPECT_FALSE(r.program[1].transient);
}

TEST(Asm, AllConditionSuffixes)
{
    auto r = assemble("b.eq x0, x1, e\n"
                      "b.ne x0, x1, e\n"
                      "b.lt x0, x1, e\n"
                      "b.le x0, x1, e\n"
                      "b.gt x0, x1, e\n"
                      "b.ge x0, x1, e\n"
                      "b.ltu x0, x1, e\n"
                      "b.leu x0, x1, e\n"
                      "b.gtu x0, x1, e\n"
                      "b.geu x0, x1, e\n"
                      "e: ret\n");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.program[0].cmpOp, CmpOp::Eq);
    EXPECT_EQ(r.program[2].cmpOp, CmpOp::Slt);
    EXPECT_EQ(r.program[6].cmpOp, CmpOp::Ult);
    EXPECT_EQ(r.program[9].cmpOp, CmpOp::Uge);
}

TEST(Asm, ErrorUnknownMnemonic)
{
    auto r = assemble("frobnicate x1\nret\n");
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("line 1"), std::string::npos);
}

TEST(Asm, ErrorUndefinedLabel)
{
    auto r = assemble("b nowhere\nret\n");
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("nowhere"), std::string::npos);
}

TEST(Asm, ErrorDuplicateLabel)
{
    auto r = assemble("l: mov x0, #1\nl: ret\n");
    EXPECT_FALSE(r.ok());
}

TEST(Asm, ErrorBadRegister)
{
    auto r = assemble("mov x99, #1\nret\n");
    EXPECT_FALSE(r.ok());
}

TEST(Asm, ErrorTrailingGarbage)
{
    auto r = assemble("mov x0, #1 x2\nret\n");
    EXPECT_FALSE(r.ok());
}

TEST(Asm, ErrorMissingTerminator)
{
    auto r = assemble("mov x0, #1\n");
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("validation"), std::string::npos);
}

TEST(Asm, RoundTripThroughToString)
{
    const char *src = "ldr x2, [x0, x1]\n"
                      "b.geu x1, #7, end\n"
                      "ldr x6, [x5, x2]\n"
                      "str x6, [x5, #64]\n"
                      "end: ret\n";
    auto first = assemble(src);
    ASSERT_TRUE(first.ok()) << first.error;
    auto second = assemble(first.program.toString());
    ASSERT_TRUE(second.ok()) << second.error;
    ASSERT_EQ(first.program.size(), second.program.size());
    for (std::size_t i = 0; i < first.program.size(); ++i) {
        EXPECT_EQ(first.program[i].kind, second.program[i].kind) << i;
        EXPECT_EQ(first.program[i].target, second.program[i].target) << i;
        EXPECT_EQ(first.program[i].imm, second.program[i].imm) << i;
    }
}

} // namespace
} // namespace scamv::bir
