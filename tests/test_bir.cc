/** @file Unit tests for the BIR instruction set and Program container. */

#include <gtest/gtest.h>

#include "bir/bir.hh"

namespace scamv::bir {
namespace {

TEST(Instr, SourceRegsPerKind)
{
    EXPECT_EQ(Instr::alu(AluOp::Add, 1, 2, 3).sourceRegs(),
              (std::vector<Reg>{2, 3}));
    EXPECT_EQ(Instr::aluImm(AluOp::Add, 1, 2, 5).sourceRegs(),
              (std::vector<Reg>{2}));
    EXPECT_EQ(Instr::movImm(1, 5).sourceRegs(), (std::vector<Reg>{}));
    EXPECT_EQ(Instr::load(1, 2, 3).sourceRegs(),
              (std::vector<Reg>{2, 3}));
    EXPECT_EQ(Instr::store(1, 2, 3).sourceRegs(),
              (std::vector<Reg>{1, 2, 3}));
    EXPECT_EQ(Instr::branch(CmpOp::Eq, 4, 5, 0).sourceRegs(),
              (std::vector<Reg>{4, 5}));
    EXPECT_EQ(Instr::jump(0).sourceRegs(), (std::vector<Reg>{}));
}

TEST(Instr, DestRegPerKind)
{
    EXPECT_EQ(Instr::alu(AluOp::Add, 1, 2, 3).destReg(), 1);
    EXPECT_EQ(Instr::movImm(4, 9).destReg(), 4);
    EXPECT_EQ(Instr::load(6, 2, 3).destReg(), 6);
    EXPECT_EQ(Instr::store(1, 2, 3).destReg(), -1);
    EXPECT_EQ(Instr::branch(CmpOp::Eq, 1, 2, 0).destReg(), -1);
    EXPECT_EQ(Instr::halt().destReg(), -1);
}

TEST(Instr, MemAccessFlag)
{
    EXPECT_TRUE(Instr::load(1, 2, 3).isMemAccess());
    EXPECT_TRUE(Instr::storeImm(1, 2, 8).isMemAccess());
    EXPECT_FALSE(Instr::alu(AluOp::Add, 1, 2, 3).isMemAccess());
}

TEST(NegateCmp, IsInvolution)
{
    for (CmpOp op : {CmpOp::Eq, CmpOp::Ne, CmpOp::Ult, CmpOp::Ule,
                     CmpOp::Ugt, CmpOp::Uge, CmpOp::Slt, CmpOp::Sle,
                     CmpOp::Sgt, CmpOp::Sge})
        EXPECT_EQ(negateCmp(negateCmp(op)), op);
}

TEST(Program, ValidateAcceptsWellFormed)
{
    Program p;
    p.push(Instr::load(1, 0, 2));
    p.push(Instr::branchImm(CmpOp::Eq, 1, 0, 3));
    p.push(Instr::alu(AluOp::Add, 1, 1, 1));
    p.push(Instr::halt());
    EXPECT_EQ(p.validate(), "");
}

TEST(Program, ValidateRejectsEmpty)
{
    EXPECT_NE(Program().validate(), "");
}

TEST(Program, ValidateRejectsMissingTerminator)
{
    Program p;
    p.push(Instr::movImm(0, 1));
    EXPECT_NE(p.validate(), "");
}

TEST(Program, ValidateRejectsBadTarget)
{
    Program p;
    p.push(Instr::branchImm(CmpOp::Eq, 0, 0, 99));
    p.push(Instr::halt());
    EXPECT_NE(p.validate(), "");
}

TEST(Program, ValidateAcceptsBranchToEnd)
{
    Program p;
    p.push(Instr::branchImm(CmpOp::Eq, 0, 0, 2));
    p.push(Instr::halt());
    EXPECT_EQ(p.validate(), "");
}

TEST(Program, ValidateRejectsBadRegister)
{
    Program p;
    p.push(Instr::load(40, 0, 1)); // x40 out of range
    p.push(Instr::halt());
    EXPECT_NE(p.validate(), "");
}

TEST(Program, UsedRegsSortedUnique)
{
    Program p;
    p.push(Instr::load(3, 0, 1));
    p.push(Instr::alu(AluOp::Add, 3, 3, 0));
    p.push(Instr::halt());
    EXPECT_EQ(p.usedRegs(), (std::vector<Reg>{0, 1, 3}));
}

TEST(Program, Counters)
{
    Program p;
    p.push(Instr::load(1, 0, 2));
    p.push(Instr::branchImm(CmpOp::Eq, 1, 0, 4));
    p.push(Instr::storeImm(1, 0, 8));
    Instr shadow = Instr::load(2, 0, 1);
    shadow.transient = true;
    p.push(shadow); // transient: not an architectural access
    p.push(Instr::halt());
    EXPECT_EQ(p.branchCount(), 1);
    EXPECT_EQ(p.memAccessCount(), 2);
}

TEST(Program, ToStringShowsLabelsAndTransients)
{
    Program p;
    p.push(Instr::branchImm(CmpOp::Slt, 0, 7, 2));
    Instr shadow = Instr::loadImm(1, 0, 0);
    shadow.transient = true;
    p.push(shadow);
    p.push(Instr::halt());
    const std::string s = p.toString();
    EXPECT_NE(s.find("b.lt x0, #7, L2"), std::string::npos);
    EXPECT_NE(s.find("@t ldr x1, [x0]"), std::string::npos);
    EXPECT_NE(s.find("L2:"), std::string::npos);
}

} // namespace
} // namespace scamv::bir
