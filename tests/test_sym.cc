/** @file Unit tests for the symbolic execution engine. */

#include <gtest/gtest.h>

#include <set>

#include "bir/asm.hh"
#include "bir/transform.hh"
#include "expr/eval.hh"
#include "obs/models.hh"
#include "sym/symexec.hh"

namespace scamv::sym {
namespace {

using bir::assemble;
using expr::ExprContext;

bir::Program
prog(const char *src)
{
    auto r = assemble(src);
    EXPECT_TRUE(r.ok()) << r.error;
    return r.program;
}

class SymTest : public ::testing::Test
{
  protected:
    ExprContext ctx;
    SymNames names{"_1"};

    std::vector<PathResult>
    run(const char *src, obs::ModelKind model = obs::ModelKind::Mct)
    {
        auto annot = obs::makeModel(model);
        return execute(ctx, prog(src), *annot, names);
    }
};

TEST_F(SymTest, StraightLineSinglePath)
{
    auto paths = run("ldr x1, [x0]\nret\n");
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].cond, ctx.tru());
    EXPECT_TRUE(paths[0].decisions.empty());
    EXPECT_EQ(paths[0].memAddrs.size(), 1u);
    EXPECT_EQ(paths[0].memAddrs[0], ctx.bvVar("x0_1"));
}

TEST_F(SymTest, BranchForksTwoPaths)
{
    auto paths = run("b.lt x0, x1, end\nldr x2, [x0]\nend: ret\n");
    ASSERT_EQ(paths.size(), 2u);
    // One path taken, one not.
    EXPECT_NE(paths[0].decisions[0], paths[1].decisions[0]);
    // The not-taken path performs the load.
    for (const auto &p : paths) {
        if (!p.decisions[0])
            EXPECT_EQ(p.memAddrs.size(), 1u);
        else
            EXPECT_TRUE(p.memAddrs.empty());
    }
}

TEST_F(SymTest, PathConditionsArePreciseAndDisjoint)
{
    auto paths = run("b.lt x0, x1, end\nldr x2, [x0]\nend: ret\n");
    expr::Assignment a;
    a.bvVars["x0_1"] = 5;
    a.bvVars["x1_1"] = 10; // x0 < x1 signed: taken
    int holds = 0;
    for (const auto &p : paths)
        holds += expr::evalBool(p.cond, a);
    EXPECT_EQ(holds, 1);
}

TEST_F(SymTest, TwoBranchesFourPathsWhenIndependent)
{
    auto paths = run("b.eq x0, x1, a\n"
                     "a: b.ne x2, x3, b\n"
                     "b: ret\n");
    EXPECT_EQ(paths.size(), 4u);
}

TEST_F(SymTest, RegisterDataFlow)
{
    auto paths = run("add x1, x0, #8\n"
                     "ldr x2, [x1]\n"
                     "ret\n");
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].memAddrs[0],
              ctx.add(ctx.bvVar("x0_1"), ctx.bv(8)));
}

TEST_F(SymTest, LoadResultPropagatesToNextAddress)
{
    auto paths = run("ldr x1, [x0]\nldr x2, [x1]\nret\n");
    ASSERT_EQ(paths.size(), 1u);
    Expr first = ctx.read(ctx.memVar("mem_1"), ctx.bvVar("x0_1"));
    EXPECT_EQ(paths[0].memAddrs[1], first);
}

TEST_F(SymTest, StoreUpdatesSymbolicMemory)
{
    auto paths = run("str x1, [x0]\nldr x2, [x0]\nret\n");
    ASSERT_EQ(paths.size(), 1u);
    // Read-over-write resolves to the stored value: observation of the
    // second access is the address; check obs count instead.
    EXPECT_EQ(paths[0].memAddrs.size(), 2u);
}

TEST_F(SymTest, HaltStopsPath)
{
    auto paths = run("ret\nldr x1, [x0]\nret\n");
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_TRUE(paths[0].memAddrs.empty());
}

TEST_F(SymTest, JumpFollowsTarget)
{
    auto paths = run("b skip\nldr x1, [x0]\nskip: ret\n");
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_TRUE(paths[0].memAddrs.empty());
}

TEST_F(SymTest, ConstantBranchPrunesInfeasiblePath)
{
    auto paths = run("mov x0, #1\n"
                     "b.eq x0, #1, end\n"
                     "ldr x2, [x3]\n"
                     "end: ret\n");
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_TRUE(paths[0].decisions[0]);
}

TEST_F(SymTest, PathIdString)
{
    auto paths = run("b.eq x0, x1, a\n"
                     "a: b.ne x2, x3, b\n"
                     "b: ret\n");
    std::set<std::string> ids;
    for (const auto &p : paths)
        ids.insert(p.pathId());
    EXPECT_EQ(ids.size(), 4u);
    EXPECT_TRUE(ids.count("TT"));
    EXPECT_TRUE(ids.count("FF"));
}

TEST_F(SymTest, TransientShadowStateIsolated)
{
    // Instrument an if-body; the shadow load must use the *snapshot*
    // register values and must not corrupt the architectural path.
    bir::Program p = prog("b.ne x1, x4, end\n"
                          "ldr x6, [x5, x2]\n"
                          "end: ret\n");
    bir::Program inst = bir::instrumentSpeculation(p);
    auto annot = obs::makeModel(obs::ModelKind::Mspec);
    auto paths = execute(ctx, inst, *annot, names);
    ASSERT_EQ(paths.size(), 2u);
    for (const auto &path : paths) {
        if (path.decisions[0]) {
            // Taken (skip body): one transient load with the body's
            // address over pre-branch values.
            ASSERT_EQ(path.transientLoadAddrs.size(), 1u);
            EXPECT_EQ(path.transientLoadAddrs[0],
                      ctx.add(ctx.bvVar("x5_1"), ctx.bvVar("x2_1")));
            EXPECT_TRUE(path.memAddrs.empty());
        } else {
            // Fall-through executes the body architecturally; the
            // empty taken side contributes no transient loads.
            EXPECT_EQ(path.memAddrs.size(), 1u);
            EXPECT_TRUE(path.transientLoadAddrs.empty());
        }
    }
}

TEST_F(SymTest, TransientLoadOrdinalAndDependence)
{
    // Two dependent loads in the body: instrument and check the
    // second shadow load is flagged as depending on a transient load.
    bir::Program p = prog("b.ne x1, x4, end\n"
                          "ldr x6, [x5, x3]\n"
                          "ldr x8, [x7, x6]\n"
                          "end: ret\n");
    bir::Program inst = bir::instrumentSpeculation(p);

    struct Probe : Annotator {
        mutable std::vector<std::pair<int, bool>> loads;
        std::string name() const override { return "probe"; }
        void
        observe(expr::ExprContext &, const InstrContext &ic,
                std::vector<Obs> &) const override
        {
            if (ic.transient && ic.instr->kind == bir::InstrKind::Load)
                loads.emplace_back(ic.transientLoadOrdinal,
                                   ic.addrDependsOnTransientLoad);
        }
    } probe;
    auto paths = execute(ctx, inst, probe, names);
    ASSERT_EQ(paths.size(), 2u);
    ASSERT_EQ(probe.loads.size(), 2u);
    EXPECT_EQ(probe.loads[0], (std::pair<int, bool>{0, false}));
    EXPECT_EQ(probe.loads[1], (std::pair<int, bool>{1, true}));
}

TEST_F(SymTest, SuffixControlsVariableNames)
{
    SymNames other{"_2"};
    auto annot = obs::makeModel(obs::ModelKind::Mct);
    auto paths = execute(ctx, prog("ldr x1, [x0]\nret\n"), *annot, other);
    EXPECT_EQ(paths[0].memAddrs[0], ctx.bvVar("x0_2"));
}

TEST_F(SymTest, ProjectSplitsByTag)
{
    bir::Program p = prog("b.ne x1, x4, end\n"
                          "ldr x6, [x5, x2]\n"
                          "end: ret\n");
    bir::Program inst = bir::instrumentSpeculation(p);
    obs::RefinementPair pair(obs::makeModel(obs::ModelKind::Mct),
                             obs::makeModel(obs::ModelKind::Mspec));
    auto paths = execute(ctx, inst, pair, names);
    for (const auto &path : paths) {
        auto base = path.project(ObsTag::Base);
        auto refined = path.project(ObsTag::RefinedOnly);
        EXPECT_EQ(base.size() + refined.size(), path.obs.size());
        if (path.decisions[0]) {
            EXPECT_EQ(refined.size(), 1u); // the transient load
        }
    }
}

} // namespace
} // namespace scamv::sym
