/** @file Unit tests for the randomized repair sampler. */

#include <gtest/gtest.h>

#include <set>

#include "obs/layout.hh"
#include "smt/sampler.hh"

namespace scamv::smt {
namespace {

using expr::Expr;
using expr::ExprContext;

TEST(Sampler, TrivialFormula)
{
    ExprContext ctx;
    Rng rng(1);
    RepairSampler s(ctx, ctx.tru(), rng);
    ASSERT_TRUE(s.sample().has_value());
}

TEST(Sampler, SimpleEquality)
{
    ExprContext ctx;
    Rng rng(2);
    Expr x = ctx.bvVar("x"), y = ctx.bvVar("y");
    Expr f = ctx.eq(ctx.add(x, ctx.bv(5)), y);
    RepairSampler s(ctx, f, rng);
    auto model = s.sample();
    ASSERT_TRUE(model.has_value());
    EXPECT_TRUE(expr::evalBool(f, *model));
    EXPECT_EQ(model->bv("x") + 5, model->bv("y"));
}

TEST(Sampler, DisequalityAndRange)
{
    ExprContext ctx;
    Rng rng(3);
    Expr x = ctx.bvVar("x"), y = ctx.bvVar("y");
    Expr f = ctx.conj({
        ctx.neq(x, y),
        ctx.ule(ctx.bv(0x80000), x),
        ctx.ult(x, ctx.bv(0x100000)),
        ctx.ule(ctx.bv(0x80000), y),
        ctx.ult(y, ctx.bv(0x100000)),
    });
    RepairSampler s(ctx, f, rng);
    auto model = s.sample();
    ASSERT_TRUE(model.has_value());
    EXPECT_TRUE(expr::evalBool(f, *model));
}

TEST(Sampler, MemoryEqualities)
{
    // The relation shape: same addresses, different memory contents.
    ExprContext ctx;
    Rng rng(4);
    Expr x1 = ctx.bvVar("x0_1"), x2 = ctx.bvVar("x0_2");
    Expr m1 = ctx.memVar("mem_1"), m2 = ctx.memVar("mem_2");
    Expr f = ctx.conj({
        ctx.eq(x1, x2),
        ctx.neq(ctx.read(m1, x1), ctx.read(m2, x2)),
        ctx.ule(ctx.bv(0x80000), x1),
        ctx.ult(x1, ctx.bv(0x100000)),
    });
    RepairSampler s(ctx, f, rng);
    auto model = s.sample();
    ASSERT_TRUE(model.has_value());
    EXPECT_TRUE(expr::evalBool(f, *model));
}

TEST(Sampler, ImplicationWithPathCondition)
{
    ExprContext ctx;
    Rng rng(5);
    Expr x = ctx.bvVar("x"), y = ctx.bvVar("y");
    // (x < y) && (x < y => x != 0) -- shaped like pc && obs constraint.
    Expr f = ctx.land(ctx.ult(x, y),
                      ctx.implies(ctx.ult(x, y), ctx.neq(x, ctx.bv(0))));
    RepairSampler s(ctx, f, rng);
    auto model = s.sample();
    ASSERT_TRUE(model.has_value());
    EXPECT_TRUE(expr::evalBool(f, *model));
}

TEST(Sampler, ReturnsNulloptOnUnsat)
{
    ExprContext ctx;
    Rng rng(6);
    Expr x = ctx.bvVar("x");
    Expr f = ctx.land(ctx.ult(x, ctx.bv(5)), ctx.ult(ctx.bv(10), x));
    SamplerConfig cfg;
    cfg.maxIters = 200;
    cfg.maxRestarts = 2;
    RepairSampler s(ctx, f, rng, cfg);
    EXPECT_FALSE(s.sample().has_value());
}

TEST(Sampler, ModelsAreDiverse)
{
    // Unlike the canonical CDCL path, repeated sampling should spread
    // over the solution space.
    ExprContext ctx;
    Rng rng(7);
    Expr x = ctx.bvVar("x");
    Expr f = ctx.land(ctx.ule(ctx.bv(0x80000), x),
                      ctx.ult(x, ctx.bv(0x100000)));
    std::set<std::uint64_t> values;
    for (int i = 0; i < 10; ++i) {
        RepairSampler s(ctx, f, rng);
        auto model = s.sample();
        ASSERT_TRUE(model.has_value());
        values.insert(model->bv("x"));
    }
    EXPECT_GE(values.size(), 5u);
}

TEST(Sampler, SentinelObservationEquality)
{
    // The Mpart observation pattern: ite(AR(x), x, 0) equal for the
    // two states, with addresses constrained into the region.
    ExprContext ctx;
    Rng rng(8);
    obs::CacheGeometry geom;
    obs::AttackerRegion ar;
    Expr x1 = ctx.bvVar("x0_1"), x2 = ctx.bvVar("x0_2");
    obs::MemoryRegion region;
    Expr obs1 = ctx.ite(ar.containsExpr(ctx, x1), x1, ctx.zero());
    Expr obs2 = ctx.ite(ar.containsExpr(ctx, x2), x2, ctx.zero());
    Expr f = ctx.conj({
        ctx.eq(obs1, obs2),
        ctx.neq(x1, x2), // refined constraint: addresses differ
        region.containsExpr(ctx, x1),
        region.containsExpr(ctx, x2),
    });
    SamplerConfig cfg;
    cfg.regionBase = region.base;
    cfg.regionLimit = region.limit();
    RepairSampler s(ctx, f, rng, cfg);
    auto model = s.sample();
    ASSERT_TRUE(model.has_value());
    EXPECT_TRUE(expr::evalBool(f, *model));
    // Both must be outside AR (inside AR + equal obs forces equality).
    EXPECT_FALSE(ar.contains(model->bv("x0_1")));
    EXPECT_FALSE(ar.contains(model->bv("x0_2")));
}

} // namespace
} // namespace scamv::smt
