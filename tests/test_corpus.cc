/**
 * @file
 * Corpus campaign tests: the `.sc` kernels of examples/corpus are a
 * first-class workload.  Verifies the headline validation result —
 * under the cacheless Mpc model refined by constant-time Mct, the
 * secret-indexed kernels (sbox, stride_walker) produce
 * counterexamples while ct_select yields no experiments at all and
 * the public-indexed kernels (branchy_parser, memcmp_early) generate
 * no distinguishing tests — and the determinism matrix: campaign
 * artifacts are byte-identical across {1,4} worker threads, {1,4}
 * shards, standalone vs service, and explicit-config vs
 * SCAMV_CORPUS_DIR env resolution.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "shard/shard.hh"
#include "svc/svc.hh"

namespace fs = std::filesystem;
using namespace scamv;

namespace {

std::string
repoPath(const std::string &rel)
{
    return std::string(SCAMV_REPO_ROOT) + "/" + rel;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return in ? ss.str() : std::string("<unreadable:" + path + ">");
}

/** Fresh per-test scratch directory under the gtest temp root. */
std::string
freshDir(const std::string &name)
{
    const std::string dir =
        testing::TempDir() + "scamv_corpus_" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

core::PipelineConfig
corpusCfg(int programs, int tests = 3, std::uint64_t seed = 99,
          bool adaptive = false)
{
    return shard::corpusWorkload(programs, tests, seed, adaptive,
                                 repoPath("examples/corpus"));
}

/** 1-process reference run writing the campaign artifact set. */
core::RunStats
runReference(core::PipelineConfig cfg, const std::string &dir)
{
    fs::create_directories(dir);
    cover::CoverageLedger ledger;
    core::ExperimentDb db;
    cfg.coverageLedger = &ledger;
    cfg.database = &db;
    core::Pipeline pipeline(cfg);
    const core::RunStats stats = pipeline.run();
    EXPECT_TRUE(shard::writeCampaignArtifacts(stats, &db, dir));
    return stats;
}

/** Worker/merge run, the scamv_worker + scamv_merge CLI path. */
shard::MergeResult
runSharded(const core::PipelineConfig &cfg, int shards,
           const std::string &root)
{
    for (int i = 0; i < shards; ++i) {
        core::PipelineConfig wcfg = cfg;
        cover::CoverageLedger ledger;
        wcfg.coverageLedger = &ledger;
        const shard::WorkerResult res = shard::runWorker(
            wcfg, shard::ShardSpec{i, shards},
            shard::shardDir(root, i));
        EXPECT_TRUE(res.ok);
    }
    core::PipelineConfig mcfg = cfg;
    cover::CoverageLedger ledger;
    core::ExperimentDb db;
    mcfg.coverageLedger = &ledger;
    mcfg.database = &db;
    shard::MergeOptions opts;
    opts.rerunMissing = true;
    return shard::mergeCampaign(mcfg, shards, root, opts);
}

void
expectArtifactsEqual(const std::string &dir, const std::string &ref)
{
    for (const char *f :
         {shard::kMetricsFile, shard::kCoverageFile, shard::kDbFile,
          shard::kStatsFile})
        EXPECT_EQ(readFile(dir + "/" + f), readFile(ref + "/" + f))
            << "artifact " << f << " differs between " << dir
            << " and " << ref;
}

/** db.csv rows whose program name starts with `prefix` and whose
 *  verdict column matches `verdict` ("" counts all rows). */
int
dbRows(const std::string &db_path, const std::string &prefix,
       const std::string &verdict = "")
{
    std::istringstream in(readFile(db_path));
    std::string line;
    int count = 0;
    std::getline(in, line); // header
    while (std::getline(in, line)) {
        if (line.rfind(prefix, 0) != 0)
            continue;
        if (verdict.empty() ||
            line.find("," + verdict + ",") != std::string::npos)
            ++count;
    }
    return count;
}

class CorpusTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        for (const char *var :
             {"SCAMV_QCACHE_MB", "SCAMV_QCACHE_FILE",
              "SCAMV_FAULT_RATE", "SCAMV_FAULT_PLAN",
              "SCAMV_SCHEDULE", "SCAMV_COVERAGE_FILE",
              "SCAMV_METRICS", "SCAMV_METRICS_TABLE",
              "SCAMV_THREADS", "SCAMV_RETRY_MAX", "SCAMV_SOLVER",
              "SCAMV_SHARD", "SCAMV_SHARD_DIR", "SCAMV_TRIAGE",
              "SCAMV_MINIMIZE", "SCAMV_FINDINGS_FILE",
              "SCAMV_CORPUS_DIR", "SCAMV_PROGRAM_FILE",
              "SCAMV_UNROLL_BUDGET"})
            unsetenv(var);
    }
};

} // namespace

// ---------------------------------------------------------------
// Validation verdicts (the paper's refinement story on real kernels)

TEST_F(CorpusTest, SboxAndStrideLeakCtSelectDoesNot)
{
    const std::string dir = freshDir("verdicts");
    // 10 programs over 5 kernels: every kernel runs twice.
    const core::RunStats stats =
        runReference(corpusCfg(10), dir);
    EXPECT_EQ(stats.programs, 10);
    EXPECT_GT(stats.counterexamples, 0);

    const std::string db = dir + "/" + shard::kDbFile;
    // Secret-indexed loads: refinement disequality satisfiable, the
    // synthesized experiments distinguish the two states on hardware.
    EXPECT_GT(dbRows(db, "sbox#", "counterexample"), 0);
    EXPECT_GT(dbRows(db, "stride_walker#", "counterexample"), 0);
    // Branchless, load-free select: the refined-only observation set
    // is empty, the path pairs are discarded before synthesis — no
    // experiments at all, not merely no counterexamples.
    EXPECT_EQ(dbRows(db, "ct_select#"), 0);
    // Public-indexed loads: both models observe the same addresses,
    // the refinement disequality is Unsat — no distinguishing tests.
    EXPECT_EQ(dbRows(db, "branchy_parser#", "counterexample"), 0);
    EXPECT_EQ(dbRows(db, "memcmp_early#", "counterexample"), 0);

    // Corpus programs get their own coverage-ledger buckets; the
    // load-free ct_select never reaches class enumeration, so it has
    // no bucket at all.
    const std::string coverage =
        readFile(dir + "/" + shard::kCoverageFile);
    EXPECT_NE(coverage.find("corpus:sbox"), std::string::npos);
    EXPECT_NE(coverage.find("corpus:stride_walker"),
              std::string::npos);
    EXPECT_EQ(coverage.find("corpus:ct_select"), std::string::npos);
}

// ---------------------------------------------------------------
// Determinism matrix

TEST_F(CorpusTest, ThreadCountDoesNotChangeArtifacts)
{
    const std::string d1 = freshDir("threads1");
    const std::string d4 = freshDir("threads4");
    runReference(corpusCfg(5), d1);
    core::PipelineConfig cfg = corpusCfg(5);
    cfg.threads = 4;
    runReference(cfg, d4);
    expectArtifactsEqual(d4, d1);
}

TEST_F(CorpusTest, ShardCountDoesNotChangeArtifacts)
{
    const std::string ref = freshDir("shardref");
    runReference(corpusCfg(5), ref);
    for (const int shards : {1, 4}) {
        const std::string root =
            freshDir("shards" + std::to_string(shards));
        const shard::MergeResult res =
            runSharded(corpusCfg(5), shards, root);
        EXPECT_TRUE(res.missingPrograms.empty());
        expectArtifactsEqual(root, ref);
    }
}

TEST_F(CorpusTest, ServiceCampaignMatchesStandalone)
{
    const std::string root = freshDir("svc");
    svc::SubmissionSpec spec;
    spec.programs = 5;
    spec.tests = 3;
    spec.seed = 99;
    spec.corpusDir = repoPath("examples/corpus");

    svc::ServiceConfig cfg;
    cfg.dir = root + "/svc";
    cfg.workers = 2;
    cfg.shards = 2;
    std::uint64_t id = 0;
    {
        svc::Service service(cfg);
        const svc::SubmitResult res = service.submit(spec);
        ASSERT_TRUE(res.accepted) << res.error;
        id = res.id;
        EXPECT_TRUE(service.wait(id));
        const auto st = service.status(id);
        ASSERT_TRUE(st.has_value());
        EXPECT_EQ(st->state, svc::SubmissionState::Done);
        EXPECT_GT(st->counterexamples, 0);
    }
    // Standalone reference through the same campaignConfig — the spec
    // round-trips its corpus path through the scamv-rpc-v1 codec.
    std::string err;
    const auto back = svc::specFromArgs(svc::specToArgs(spec), err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(*back, spec);
    const std::string ref = root + "/ref";
    const shard::MergeResult res =
        runSharded(svc::campaignConfig(*back), 2, ref);
    EXPECT_TRUE(res.missingPrograms.empty());
    expectArtifactsEqual(root + "/svc/campaign-" + std::to_string(id),
                         ref);
}

TEST_F(CorpusTest, EnvCorpusMatchesExplicitConfig)
{
    // SCAMV_CORPUS_DIR resolution (core::resolveCampaignEnv) feeds
    // the same corpus the explicit config carries: a run configured
    // only through the environment is byte-identical.
    const std::string ref = freshDir("envref");
    runReference(corpusCfg(5), ref);

    const std::string env_dir = freshDir("envrun");
    core::PipelineConfig cfg = corpusCfg(5);
    cfg.corpus.reset(); // force env resolution
    setenv("SCAMV_CORPUS_DIR",
           repoPath("examples/corpus").c_str(), 1);
    runReference(cfg, env_dir);
    unsetenv("SCAMV_CORPUS_DIR");
    expectArtifactsEqual(env_dir, ref);
}
