/** @file Unit tests for the campaign thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.hh"

namespace scamv {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<int> counter{0};
    for (int i = 0; i < 500; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, SlotResultsAreVisibleAfterWait)
{
    // The pipeline's usage pattern: each task writes its own slot,
    // wait() is the barrier before the single-threaded merge.
    ThreadPool pool(3);
    std::vector<int> slots(64, -1);
    for (int i = 0; i < 64; ++i)
        pool.submit([&slots, i] { slots[i] = i * i; });
    pool.wait();
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(slots[i], i * i);
}

TEST(ThreadPool, WaitRethrowsFirstTaskException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, ReusableAfterWaitAndAfterError)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([&counter] { ++counter; });
    pool.wait();

    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    // The error is consumed; the pool keeps working.
    pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
    SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&counter] { ++counter; });
    }
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DefaultThreadCountRespectsValidEnv)
{
    setenv("SCAMV_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
    unsetenv("SCAMV_THREADS");
}

TEST(ThreadPool, DefaultThreadCountRejectsMalformedEnv)
{
    setenv("SCAMV_THREADS", "abc", 1);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
    setenv("SCAMV_THREADS", "4x", 1);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
    setenv("SCAMV_THREADS", "0", 1);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
    setenv("SCAMV_THREADS", "-2", 1);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
    unsetenv("SCAMV_THREADS");
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

TEST(ThreadPool, ZeroThreadsSelectsDefault)
{
    setenv("SCAMV_THREADS", "2", 1);
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 2u);
    unsetenv("SCAMV_THREADS");
}

} // namespace
} // namespace scamv
