/** @file Tests for the experiment database (EmbExp-Logs stand-in). */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/expdb.hh"
#include "core/pipeline.hh"

namespace scamv::core {
namespace {

ExperimentRecord
record(const std::string &prog, harness::Verdict v,
       const std::string &path = "T")
{
    ExperimentRecord r;
    r.programName = prog;
    r.pathId = path;
    r.verdict = v;
    r.totalReps = 10;
    r.differingReps = v == harness::Verdict::Counterexample ? 10 : 0;
    return r;
}

TEST(ExpDb, CountsByVerdict)
{
    ExperimentDb db;
    db.add(record("p0", harness::Verdict::Counterexample));
    db.add(record("p0", harness::Verdict::Indistinguishable));
    db.add(record("p1", harness::Verdict::Inconclusive));
    db.add(record("p1", harness::Verdict::Counterexample));
    EXPECT_EQ(db.size(), 4u);
    EXPECT_EQ(db.countByVerdict(harness::Verdict::Counterexample), 2u);
    EXPECT_EQ(db.countByVerdict(harness::Verdict::Inconclusive), 1u);
    EXPECT_EQ(db.countByVerdict(harness::Verdict::Indistinguishable),
              1u);
}

TEST(ExpDb, CounterexampleQueries)
{
    ExperimentDb db;
    db.add(record("p0", harness::Verdict::Counterexample, "T"));
    db.add(record("p0", harness::Verdict::Counterexample, "F"));
    db.add(record("p1", harness::Verdict::Counterexample, "T"));
    db.add(record("p2", harness::Verdict::Indistinguishable, "T"));
    EXPECT_EQ(db.counterexamples().size(), 3u);
    auto by_prog = db.counterexamplesByProgram();
    EXPECT_EQ(by_prog.size(), 2u);
    EXPECT_EQ(by_prog["p0"], 2);
    EXPECT_EQ(by_prog["p1"], 1);
    auto by_path = db.counterexamplesByPath();
    EXPECT_EQ(by_path["T"], 2);
    EXPECT_EQ(by_path["F"], 1);
}

TEST(ExpDb, SummaryMentionsCounts)
{
    ExperimentDb db;
    db.add(record("p0", harness::Verdict::Counterexample));
    db.add(record("p1", harness::Verdict::Inconclusive));
    const std::string s = db.summary();
    EXPECT_NE(s.find("2 experiments"), std::string::npos);
    EXPECT_NE(s.find("1 counterexamples"), std::string::npos);
    EXPECT_NE(s.find("1 inconclusive"), std::string::npos);
}

TEST(ExpDb, CsvExportRoundTrip)
{
    ExperimentDb db;
    ExperimentRecord r = record("prog-x", harness::Verdict::Counterexample);
    r.testCase.s1.regs.regs[3] = 0x80000;
    r.testCase.s1.mem = {{0x80008, 0x42}};
    r.testCase.s2.regs.regs[3] = 0x80040;
    r.trained = true;
    db.add(r);

    const std::string path = "/tmp/scamv_expdb_test.csv";
    ASSERT_TRUE(db.exportCsv(path));
    std::ifstream f(path);
    std::stringstream contents;
    contents << f.rdbuf();
    const std::string csv = contents.str();
    EXPECT_NE(csv.find("program,path,trained"), std::string::npos);
    EXPECT_NE(csv.find("prog-x"), std::string::npos);
    EXPECT_NE(csv.find("counterexample"), std::string::npos);
    EXPECT_NE(csv.find("x3=0x80000"), std::string::npos);
    EXPECT_NE(csv.find("0x80008=0x42"), std::string::npos);
    EXPECT_NE(csv.find("yes"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ExpDb, PipelineRecordsEveryExperiment)
{
    ExperimentDb db;
    PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    cfg.programs = 4;
    cfg.testsPerProgram = 5;
    cfg.seed = 77;
    cfg.database = &db;
    RunStats stats = Pipeline(cfg).run();

    EXPECT_EQ(db.size(), static_cast<std::size_t>(stats.experiments));
    EXPECT_EQ(db.countByVerdict(harness::Verdict::Counterexample),
              static_cast<std::size_t>(stats.counterexamples));
    EXPECT_EQ(db.counterexamplesByProgram().size(),
              static_cast<std::size_t>(stats.programsWithCex));
    // Records carry real content.
    for (const auto &r : db.all()) {
        EXPECT_FALSE(r.programName.empty());
        EXPECT_FALSE(r.programText.empty());
        EXPECT_TRUE(r.trained);
        EXPECT_EQ(r.totalReps, 10);
    }
}

TEST(ExpDb, CounterexamplePatternMining)
{
    // The Section 1 use case: inspect collected counterexamples for a
    // pattern — here, that every Template A counterexample's states
    // differ in the pointed-to memory word (the SiSCloak signature).
    ExperimentDb db;
    PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    cfg.programs = 5;
    cfg.testsPerProgram = 5;
    cfg.seed = 78;
    cfg.database = &db;
    Pipeline(cfg).run();

    auto cexs = db.counterexamples();
    ASSERT_FALSE(cexs.empty());
    for (const auto *r : cexs) {
        const bool regs_differ =
            r->testCase.s1.regs.regs != r->testCase.s2.regs.regs;
        const bool mem_differs = r->testCase.s1.mem != r->testCase.s2.mem;
        EXPECT_TRUE(regs_differ || mem_differs);
    }
}

} // namespace
} // namespace scamv::core
