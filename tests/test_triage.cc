/**
 * @file
 * Triage-layer tests: abstract-domain units, the pre-screen's
 * soundness criteria, ddmin laws, the counterexample minimizer,
 * mechanism clustering, findings-export byte-identity across
 * threads / shards / cache temperature, fault-site degradation, and
 * the screen-on/off campaign differential.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/expdb.hh"
#include "core/pipeline.hh"
#include "cover/scheduler.hh"
#include "shard/shard.hh"
#include "support/qcache/qcache.hh"
#include "triage/absdom.hh"
#include "triage/findings.hh"
#include "triage/minimize.hh"
#include "triage/screen.hh"

namespace scamv::triage {
namespace {

using core::Coverage;
using core::PipelineConfig;
using core::RunStats;

// ---- Abstract domain ------------------------------------------------

TEST(AbsDom, ConstantAndSetBasics)
{
    const AbsValue c = AbsValue::constant(42);
    EXPECT_EQ(c.asConstant(), 42u);
    EXPECT_TRUE(c.contains(42));
    EXPECT_FALSE(c.contains(41));

    const AbsValue s = AbsValue::setOf({7, 3, 3, 9});
    EXPECT_EQ(s.kind, AbsValue::Kind::Set);
    EXPECT_EQ(s.elems, (std::vector<std::uint64_t>{3, 7, 9}));
    EXPECT_FALSE(s.asConstant().has_value());
    EXPECT_TRUE(s.subsumes(AbsValue::constant(7)));
    EXPECT_FALSE(s.subsumes(AbsValue::constant(8)));
    EXPECT_TRUE(AbsValue::top().subsumes(s));
    EXPECT_FALSE(s.subsumes(AbsValue::top()));
}

TEST(AbsDom, SetOverCapHullsToInterval)
{
    std::vector<std::uint64_t> members;
    for (std::uint64_t i = 0; i <= kSetCap; ++i)
        members.push_back(i * 10 + 5);
    const AbsValue v = AbsValue::setOf(members);
    EXPECT_EQ(v.kind, AbsValue::Kind::Interval);
    EXPECT_EQ(v.lo, 5u);
    EXPECT_EQ(v.hi, kSetCap * 10 + 5);
    EXPECT_TRUE(v.contains(6)); // hull over-approximates
}

TEST(AbsDom, JoinUnionsAndHulls)
{
    const AbsValue a = AbsValue::setOf({1, 2});
    const AbsValue b = AbsValue::setOf({2, 3});
    const AbsValue j = join(a, b);
    EXPECT_EQ(j.elems, (std::vector<std::uint64_t>{1, 2, 3}));

    const AbsValue k = join(AbsValue::interval(0, 10),
                            AbsValue::constant(20));
    EXPECT_EQ(k.kind, AbsValue::Kind::Interval);
    EXPECT_EQ(k.lo, 0u);
    EXPECT_EQ(k.hi, 20u);

    EXPECT_TRUE(join(AbsValue::top(), a).isTop());
    EXPECT_TRUE(join(a, AbsValue::top()).isTop());
}

TEST(AbsDom, WidenKeepsSubsumedElseTop)
{
    const AbsValue prev = AbsValue::interval(0, 100);
    EXPECT_EQ(widen(prev, AbsValue::interval(5, 50)), prev);
    EXPECT_TRUE(widen(prev, AbsValue::interval(0, 200)).isTop());
}

TEST(AbsDom, TransferConstantsExact)
{
    EXPECT_EQ(transfer(bir::AluOp::Add, AbsValue::constant(3),
                       AbsValue::constant(4)),
              AbsValue::constant(7));
    const AbsValue s = transfer(bir::AluOp::Add,
                                AbsValue::setOf({1, 2}),
                                AbsValue::constant(10));
    EXPECT_EQ(s.elems, (std::vector<std::uint64_t>{11, 12}));
    // Wrapping semantics, like the concrete core.
    EXPECT_EQ(transfer(bir::AluOp::Add, AbsValue::constant(~0ULL),
                       AbsValue::constant(1)),
              AbsValue::constant(0));
}

TEST(AbsDom, TransferIntervalAddImm)
{
    const AbsValue v = transfer(bir::AluOp::Add,
                                AbsValue::interval(0x100, 0x200),
                                AbsValue::constant(0x10));
    EXPECT_EQ(v.kind, AbsValue::Kind::Interval);
    EXPECT_EQ(v.lo, 0x110u);
    EXPECT_EQ(v.hi, 0x210u);
    // Potential wrap: must go Top, not a wrong interval.
    EXPECT_TRUE(transfer(bir::AluOp::Add,
                         AbsValue::interval(~0ULL - 1, ~0ULL),
                         AbsValue::constant(2))
                    .isTop());
}

TEST(AbsDom, TransferShiftAndMaskBounds)
{
    const AbsValue lsr = transfer(bir::AluOp::Lsr,
                                  AbsValue::interval(0x1000, 0x2000),
                                  AbsValue::constant(6));
    EXPECT_EQ(lsr.lo, 0x40u);
    EXPECT_EQ(lsr.hi, 0x80u);

    const AbsValue andv = transfer(bir::AluOp::And, AbsValue::top(),
                                   AbsValue::constant(0x7f));
    EXPECT_EQ(andv.kind, AbsValue::Kind::Interval);
    EXPECT_EQ(andv.lo, 0u);
    EXPECT_EQ(andv.hi, 0x7fu);

    // Shift by a non-constant amount over-approximates to Top.
    EXPECT_TRUE(transfer(bir::AluOp::Lsl, AbsValue::constant(1),
                         AbsValue::interval(0, 8))
                    .isTop());
}

TEST(AbsDom, ClassBoundProjection)
{
    obs::CacheGeometry geom; // 64B lines, 128 sets
    const auto mask_c = classBound(AbsValue::constant(0x80000), geom);
    ASSERT_EQ(mask_c.size(), geom.numSets);
    EXPECT_TRUE(mask_c[geom.setOf(0x80000)]);
    EXPECT_EQ(std::count(mask_c.begin(), mask_c.end(), true), 1);

    // Two lines within one set-stride: exactly two classes.
    const auto mask_i =
        classBound(AbsValue::interval(0x80000, 0x80000 + 64), geom);
    EXPECT_EQ(std::count(mask_i.begin(), mask_i.end(), true), 2);

    // Top and full-cache-span intervals mark every class.
    const auto mask_t = classBound(AbsValue::top(), geom);
    EXPECT_EQ(std::count(mask_t.begin(), mask_t.end(), true),
              static_cast<long>(geom.numSets));
    const auto mask_span =
        classBound(AbsValue::interval(0, 64 * 128 * 2), geom);
    EXPECT_EQ(std::count(mask_span.begin(), mask_span.end(), true),
              static_cast<long>(geom.numSets));
}

TEST(AbsDom, AnalyzeConstantAddressProgram)
{
    bir::Program p("const");
    p.push(bir::Instr::movImm(0, 0x80000));
    p.push(bir::Instr::loadImm(1, 0, 0x40));
    p.push(bir::Instr::halt());
    const AbstractResult r = analyzeProgram(p);
    ASSERT_EQ(r.accesses.size(), 1u);
    EXPECT_EQ(r.accesses[0].addr.asConstant(), 0x80040u);
    EXPECT_TRUE(r.accesses[0].isLoad);
    EXPECT_TRUE(r.allConstant());

    obs::CacheGeometry geom;
    const auto mask = r.archClassMask(geom);
    EXPECT_TRUE(mask[geom.setOf(0x80040)]);
    EXPECT_EQ(std::count(mask.begin(), mask.end(), true), 1);
}

TEST(AbsDom, AnalyzeLoadDestAndEntryRegsAreTop)
{
    bir::Program p("top");
    p.push(bir::Instr::movImm(0, 0x80000));
    p.push(bir::Instr::loadImm(1, 0, 0));  // x1 = mem[...]: Top dest
    p.push(bir::Instr::loadImm(2, 1, 0));  // address via loaded value
    p.push(bir::Instr::loadImm(3, 4, 0));  // address via entry reg x4
    p.push(bir::Instr::halt());
    const AbstractResult r = analyzeProgram(p);
    ASSERT_EQ(r.accesses.size(), 3u);
    EXPECT_FALSE(r.accesses[0].addr.isTop());
    EXPECT_TRUE(r.accesses[1].addr.isTop());
    EXPECT_TRUE(r.accesses[2].addr.isTop());
    EXPECT_FALSE(r.allConstant());
    EXPECT_FALSE(r.allArchConstant());
}

// ---- Pre-screen criteria --------------------------------------------

TEST(Screen, IdenticalModelsAreBoring)
{
    bir::Program p("id");
    p.push(bir::Instr::loadImm(1, 0, 0));
    p.push(bir::Instr::halt());
    const auto r = screenProgram(p, obs::ModelKind::Mct,
                                 obs::ModelKind::Mct, {});
    EXPECT_EQ(r.verdict, ScreenVerdict::Boring);
    EXPECT_EQ(r.reason, "identical-models");
}

TEST(Screen, SpecPairWithoutTransientAccessIsBoring)
{
    bir::Program p("notrans");
    p.push(bir::Instr::loadImm(1, 0, 0)); // architectural only
    p.push(bir::Instr::halt());
    const auto r = screenProgram(p, obs::ModelKind::Mct,
                                 obs::ModelKind::Mspec, {});
    EXPECT_EQ(r.verdict, ScreenVerdict::Boring);
    EXPECT_EQ(r.reason, "no-transient");

    // Mspec1 only observes transient *loads*: a transient store
    // alone is still boring, but not for Mspec.
    bir::Program q("tstore");
    bir::Instr st = bir::Instr::storeImm(1, 0, 0);
    st.transient = true;
    q.push(st);
    q.push(bir::Instr::halt());
    EXPECT_EQ(screenProgram(q, obs::ModelKind::Mct,
                            obs::ModelKind::Mspec1, {})
                  .reason,
              "no-transient");
    EXPECT_EQ(screenProgram(q, obs::ModelKind::Mct,
                            obs::ModelKind::Mspec, {})
                  .verdict,
              ScreenVerdict::Interesting);
}

TEST(Screen, SpecPairWithTransientLoadIsInteresting)
{
    bir::Program p("trans");
    bir::Instr ld = bir::Instr::loadImm(1, 0, 0); // Top address
    ld.transient = true;
    p.push(ld);
    p.push(bir::Instr::halt());
    EXPECT_EQ(screenProgram(p, obs::ModelKind::Mct,
                            obs::ModelKind::Mspec, {})
                  .verdict,
              ScreenVerdict::Interesting);
}

TEST(Screen, MpartPairContainedInAttackerWindowIsBoring)
{
    bir::Program p("win");
    p.push(bir::Instr::loadImm(1, 0, 0)); // Top address: all classes
    p.push(bir::Instr::halt());
    obs::ModelParams params;
    params.attacker.loSet = 0;
    params.attacker.hiSet = 127; // full window: AR(addr) always true
    const auto r = screenProgram(p, obs::ModelKind::Mpart,
                                 obs::ModelKind::MpartRefined, params);
    EXPECT_EQ(r.verdict, ScreenVerdict::Boring);
    EXPECT_EQ(r.reason, "ar-contained");
}

TEST(Screen, MpartPairOutsideWindowIsInteresting)
{
    bir::Program p("nowin");
    p.push(bir::Instr::loadImm(1, 0, 0)); // Top: escapes [61,127]
    p.push(bir::Instr::halt());
    obs::ModelParams params; // default window [61, 127]
    EXPECT_EQ(screenProgram(p, obs::ModelKind::Mpart,
                            obs::ModelKind::MpartRefined, params)
                  .verdict,
              ScreenVerdict::Interesting);
}

TEST(Screen, ConstantFootprintIsBoring)
{
    bir::Program p("const");
    p.push(bir::Instr::movImm(0, 0x80000));
    p.push(bir::Instr::loadImm(1, 0, 0));
    p.push(bir::Instr::halt());
    const auto r = screenProgram(p, obs::ModelKind::Mline,
                                 obs::ModelKind::Mct, {});
    EXPECT_EQ(r.verdict, ScreenVerdict::Boring);
    EXPECT_EQ(r.reason, "constant-footprint");
}

TEST(Screen, BranchyConstantProgramIsInteresting)
{
    // With branches the relation keeps cross pairs whose refined
    // observation lists differ in length (no disequality needed), so
    // constant addresses prove nothing: must stay Interesting.
    bir::Program p("branchy");
    p.push(bir::Instr::branchImm(bir::CmpOp::Eq, 0, 0, 3));
    p.push(bir::Instr::movImm(2, 0x80000));
    p.push(bir::Instr::jump(4));
    p.push(bir::Instr::movImm(2, 0x80040));
    p.push(bir::Instr::halt());
    EXPECT_EQ(screenProgram(p, obs::ModelKind::Mline,
                            obs::ModelKind::Mct, {})
                  .verdict,
              ScreenVerdict::Interesting);
}

// ---- ddmin laws -----------------------------------------------------

TEST(Ddmin, FindsOneMinimalCore)
{
    const Predicate pred = [](const KeepMask &keep) {
        return keep[2] && keep[5];
    };
    int budget = 1000;
    const KeepMask result = ddmin(8, pred, budget);
    KeepMask expected(8, false);
    expected[2] = expected[5] = true;
    EXPECT_EQ(result, expected);
    EXPECT_LT(budget, 1000); // evaluations were charged
}

TEST(Ddmin, DeterministicAndBudgetRespected)
{
    const Predicate pred = [](const KeepMask &keep) {
        return keep[0] && keep[7] && keep[11];
    };
    int b1 = 500, b2 = 500;
    EXPECT_EQ(ddmin(12, pred, b1), ddmin(12, pred, b2));
    EXPECT_EQ(b1, b2);

    // Zero budget: no evaluations, everything kept (valid, unshrunk).
    int b0 = 0;
    EXPECT_EQ(ddmin(12, pred, b0), KeepMask(12, true));
    EXPECT_EQ(b0, 0);
}

TEST(Ddmin, DropInstrsRemapsBranchTargets)
{
    bir::Program p("remap");
    p.push(bir::Instr::branchImm(bir::CmpOp::Eq, 0, 0, 3));
    p.push(bir::Instr::movImm(1, 1));
    p.push(bir::Instr::movImm(2, 2));
    p.push(bir::Instr::halt());
    KeepMask keep{true, false, true, true};
    const bir::Program q = dropInstrs(p, keep);
    ASSERT_EQ(q.size(), 3u);
    EXPECT_EQ(q[0].target, 2); // 3 -> first survivor at/after 3
    EXPECT_TRUE(q.validate().empty());

    // Dropping the branch's own target lands on the next survivor.
    KeepMask keep2{true, true, true, false};
    const bir::Program r = dropInstrs(p, keep2);
    EXPECT_EQ(r[0].target, 3); // one past the end (validate rejects)
}

// ---- Minimizer ------------------------------------------------------

bir::Program
leakProgram()
{
    bir::Program p("leak");
    p.push(bir::Instr::movImm(5, 7));   // junk
    p.push(bir::Instr::movImm(6, 9));   // junk
    p.push(bir::Instr::alu(bir::AluOp::Add, 7, 5, 6)); // junk
    p.push(bir::Instr::loadImm(1, 0, 0));
    p.push(bir::Instr::halt());
    return p;
}

harness::TestCase
leakCase()
{
    harness::TestCase tc;
    tc.s1.regs.regs[0] = 0x80000; // cache set 0
    tc.s2.regs.regs[0] = 0x81000; // cache set 64
    return tc;
}

TEST(Minimize, ShrinksLeakWitnessToCore)
{
    const bir::Program p = leakProgram();
    const harness::TestCase tc = leakCase();
    MinimizeConfig cfg;
    cfg.seed = 17;

    // Sanity: the witness is a counterexample on the eval platform.
    harness::Platform platform(cfg.platform, cfg.seed ^ 0x7a1a6eULL);
    ASSERT_EQ(platform.runExperiment(p, tc).verdict,
              harness::Verdict::Counterexample);

    const MinimizeResult r = minimizeCounterexample(p, tc, cfg);
    EXPECT_EQ(r.program.size(), 2u); // ld + halt
    EXPECT_GT(r.evalsUsed, 1);
    EXPECT_TRUE(r.program.validate().empty());
    // The shrunk witness still reproduces.
    EXPECT_EQ(platform.runExperiment(r.program, r.tc).verdict,
              harness::Verdict::Counterexample);
    // State shrank too (greedy bit-clearing).
    EXPECT_LT(stateBitCount(r.tc), stateBitCount(tc));
}

TEST(Minimize, Deterministic)
{
    MinimizeConfig cfg;
    cfg.seed = 17;
    const MinimizeResult a =
        minimizeCounterexample(leakProgram(), leakCase(), cfg);
    const MinimizeResult b =
        minimizeCounterexample(leakProgram(), leakCase(), cfg);
    EXPECT_EQ(a.program.toString(), b.program.toString());
    EXPECT_EQ(a.tc, b.tc);
    EXPECT_EQ(a.evalsUsed, b.evalsUsed);
}

// ---- Mechanism clustering / findings export -------------------------

TEST(Findings, ShapeSignatureTokens)
{
    bir::Program p("sig");
    p.push(bir::Instr::movImm(0, 1));
    p.push(bir::Instr::alu(bir::AluOp::Eor, 1, 0, 0));
    bir::Instr ld = bir::Instr::loadImm(2, 0, 0);
    ld.transient = true;
    p.push(ld);
    p.push(bir::Instr::branchImm(bir::CmpOp::Eq, 0, 0, 4));
    p.push(bir::Instr::halt());
    EXPECT_EQ(shapeSignature(p), "mov,eor,t:ld,br,halt");
}

TEST(Findings, StateBitCountAndJsonStability)
{
    harness::TestCase tc = leakCase();
    EXPECT_EQ(stateBitCount(tc), 1 + 2); // 0x80000 + 0x81000 bits

    Finding f;
    f.progIndex = 3;
    f.program = "prog \"quoted\"";
    f.mechanism = "cache_set_collision";
    f.signature = "cache_set_collision/ld,halt";
    f.minimized = true;
    f.instrsBefore = 5;
    f.instrsAfter = 2;
    f.core = "ld x1, [x0]\nhalt";
    f.tc = tc;
    const std::string json = findingsToJson({f, f});
    EXPECT_NE(json.find("\"schema\": \"scamv-findings-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("\\n"), std::string::npos);
    // Pure function: byte-identical on re-render.
    EXPECT_EQ(json, findingsToJson({f, f}));
    // Clusters sort by signature; distinct signatures split.
    Finding g = f;
    g.signature = "prefetch_spill/ld,ld,halt";
    g.mechanism = "prefetch_spill";
    const std::string two = findingsToJson({f, g});
    EXPECT_NE(two.find("\"findings\": 2"), std::string::npos);
    EXPECT_LT(two.find("cache_set_collision/"),
              two.find("prefetch_spill/"));
}

TEST(Findings, ClassifyMechanism)
{
    // Speculative refinements classify structurally.
    EXPECT_EQ(classifyMechanism(leakProgram(), leakCase(), std::nullopt,
                                true, {}, 1),
              "speculative_load");
    // A plain set-collision leak survives with the prefetcher off.
    EXPECT_EQ(classifyMechanism(leakProgram(), leakCase(), std::nullopt,
                                false, {}, 1),
              "cache_set_collision");
}

// ---- Scheduler gating ----------------------------------------------

TEST(ScreenScheduler, PlanClassAllowedSkipsAndCounts)
{
    cover::RoundPlan plan;
    plan.classOrder = {0, 1, 2, 3};
    std::vector<bool> allowed{false, false, true, false};
    int draw = 0;
    std::int64_t skipped = 0;
    EXPECT_EQ(cover::planClassAllowed(plan, 0, draw, 1, allowed,
                                      &skipped),
              2);
    EXPECT_EQ(draw, 3); // consumed the two skipped draws + the hit
    EXPECT_EQ(skipped, 2);
}

TEST(ScreenScheduler, PlanClassAllowedFallsBackWhenNoneAllowed)
{
    cover::RoundPlan plan;
    plan.classOrder = {5, 6};
    std::vector<bool> allowed(8, false);
    int draw = 0;
    std::int64_t skipped = 0;
    const int cls = cover::planClassAllowed(plan, 0, draw, 1, allowed,
                                            &skipped);
    EXPECT_EQ(cls, 5); // one unfiltered fallback draw
    EXPECT_EQ(skipped, 2);
    EXPECT_EQ(draw, 3);
}

// ---- Campaign-level behaviour --------------------------------------

PipelineConfig
strideCfg()
{
    PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::Stride;
    cfg.model = obs::ModelKind::Mpart;
    cfg.refinement = obs::ModelKind::MpartRefined;
    cfg.coverage = Coverage::PcAndLine;
    cfg.programs = 8;
    cfg.testsPerProgram = 6;
    cfg.seed = 42;
    cfg.threads = 1;
    cfg.deterministicMetricsTiming = true;
    cfg.modelParams.attacker.loSet = 61;
    cfg.platform.visibleLoSet = 61;
    cfg.platform.visibleHiSet = 127;
    cfg.triageScreen = 0;
    cfg.triageMinimize = 0;
    return cfg;
}

TEST(ScreenCampaign, StrideFullWindowScreensEveryProgram)
{
    // Attacker window = every set: ar-contained proves each Stride
    // program boring, so the screened campaign runs zero SMT.
    PipelineConfig cfg = strideCfg();
    cfg.modelParams.attacker.loSet = 0;
    cfg.platform.visibleLoSet = 0;
    cfg.triageScreen = 1;
    const RunStats on = core::Pipeline(cfg).run();
    EXPECT_EQ(on.screened, cfg.programs);
    EXPECT_EQ(on.experiments, 0);
    EXPECT_EQ(on.metrics.histograms.count("phase.smt_seconds"), 0u);

    // The unscreened run pays symexec + SMT for the same nothing.
    cfg.triageScreen = 0;
    const RunStats off = core::Pipeline(cfg).run();
    EXPECT_EQ(off.screened, 0);
    EXPECT_EQ(off.experiments, 0);
    EXPECT_EQ(off.counterexamples, on.counterexamples);
    EXPECT_GT(off.metrics.histograms.count("phase.smt_seconds"), 0u);
}

/** Campaign findings rendered as the canonical JSON export. */
std::string
findingsJsonOf(const RunStats &stats)
{
    return findingsToJson(stats.findings);
}

TEST(FindingsIdentity, ByteIdenticalAcrossThreads)
{
    PipelineConfig cfg = strideCfg();
    cfg.triageMinimize = 1;
    const RunStats t1 = core::Pipeline(cfg).run();
    ASSERT_GT(t1.counterexamples, 0);
    ASSERT_FALSE(t1.findings.empty());
    cfg.threads = 4;
    const RunStats t4 = core::Pipeline(cfg).run();
    EXPECT_EQ(findingsJsonOf(t1), findingsJsonOf(t4));
    EXPECT_EQ(t1.metrics, t4.metrics);
}

TEST(FindingsIdentity, ByteIdenticalAcrossShards)
{
    PipelineConfig base = strideCfg();
    base.triageMinimize = 1;
    const PipelineConfig cfg = core::resolveCampaignEnv(base);

    const auto run_sharded = [&](int shards) {
        std::vector<core::ProgramOutcome> slots(
            static_cast<std::size_t>(cfg.programs));
        for (int s = 0; s < shards; ++s) {
            const shard::Slice sl =
                shard::planShard(cfg.seed, cfg.programs, shards, s);
            core::CampaignSlice slice =
                core::runCampaignSlice(cfg, sl.first, sl.count);
            for (int k = 0; k < slice.count; ++k)
                slots[static_cast<std::size_t>(sl.first + k)] =
                    std::move(
                        slice.outcomes[static_cast<std::size_t>(k)]);
        }
        core::MergeTailOptions opts;
        opts.honorEnvExports = false;
        return core::mergeCampaignOutcomes(cfg, slots, opts);
    };
    const RunStats one = run_sharded(1);
    const RunStats four = run_sharded(4);
    ASSERT_FALSE(one.findings.empty());
    EXPECT_EQ(findingsJsonOf(one), findingsJsonOf(four));

    // And both equal the unsharded campaign's export.
    const RunStats whole = core::Pipeline(base).run();
    EXPECT_EQ(findingsJsonOf(whole), findingsJsonOf(one));
}

TEST(FindingsIdentity, ByteIdenticalColdVsWarmQcache)
{
    qcache::QueryCache cache({8 << 20, ""});
    PipelineConfig cfg = strideCfg();
    cfg.triageMinimize = 1;
    cfg.queryCache = &cache;
    const RunStats cold = core::Pipeline(cfg).run();
    const RunStats warm = core::Pipeline(cfg).run();
    ASSERT_FALSE(cold.findings.empty());
    EXPECT_EQ(findingsJsonOf(cold), findingsJsonOf(warm));
}

TEST(FindingsIdentity, ExportWritesFile)
{
    PipelineConfig cfg = strideCfg();
    cfg.triageMinimize = 1;
    const std::string path =
        testing::TempDir() + "/scamv-findings-test.json";
    cfg.findingsFile = path;
    const RunStats stats = core::Pipeline(cfg).run();
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), findingsJsonOf(stats));
    std::remove(path.c_str());
}

TEST(TriageFaultCampaign, MinimizerFlakeKeepsUnminimizedFinding)
{
    PipelineConfig cfg = strideCfg();
    cfg.triageMinimize = 1;
    cfg.faultPlan.rate = 1.0;
    cfg.faultPlan.mask =
        1u << static_cast<int>(faults::Site::TriageMinimizeFlake);
    const RunStats stats = core::Pipeline(cfg).run();
    ASSERT_GT(stats.counterexamples, 0);
    ASSERT_FALSE(stats.findings.empty());
    EXPECT_GT(stats.triageDegraded, 0);
    for (const Finding &f : stats.findings) {
        EXPECT_TRUE(f.degraded);
        EXPECT_FALSE(f.minimized);
        EXPECT_EQ(f.instrsBefore, f.instrsAfter);
    }
    // Degradation is deterministic, like every fault decision.
    const RunStats again = core::Pipeline(cfg).run();
    EXPECT_EQ(findingsJsonOf(stats), findingsJsonOf(again));
}

/** Screen-on/off differential scaffolding shared by the plain and
 *  fault-plan variants: identical db records and verdict counters
 *  (the screen may skip work, never change an outcome). */
void
expectScreenDifferentialHolds(PipelineConfig cfg)
{
    core::ExperimentDb db_on, db_off;
    cfg.triageScreen = 1;
    cfg.database = &db_on;
    const RunStats on = core::Pipeline(cfg).run();
    cfg.triageScreen = 0;
    cfg.database = &db_off;
    const RunStats off = core::Pipeline(cfg).run();

    EXPECT_GT(on.screened, 0);
    EXPECT_EQ(off.screened, 0);
    EXPECT_EQ(on.experiments, off.experiments);
    EXPECT_EQ(on.counterexamples, off.counterexamples);
    EXPECT_EQ(on.inconclusive, off.inconclusive);

    const std::string p_on = testing::TempDir() + "/scamv-diff-on.csv";
    const std::string p_off =
        testing::TempDir() + "/scamv-diff-off.csv";
    ASSERT_TRUE(db_on.exportCsv(p_on));
    ASSERT_TRUE(db_off.exportCsv(p_off));
    const auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        std::stringstream buf;
        buf << in.rdbuf();
        return buf.str();
    };
    EXPECT_EQ(slurp(p_on), slurp(p_off));
    std::remove(p_on.c_str());
    std::remove(p_off.c_str());
}

PipelineConfig
differentialCfg()
{
    PipelineConfig cfg;
    cfg.templateKinds = {gen::TemplateKind::Stride,
                         gen::TemplateKind::C};
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.coverage = Coverage::PcAndLine;
    cfg.testsPerProgram = 2;
    cfg.seed = 7;
    cfg.threads = 4;
    cfg.deterministicMetricsTiming = true;
    cfg.triageMinimize = 0;
    return cfg;
}

TEST(ScreenDifferential, TwoHundredProgramsIdenticalVerdicts)
{
    PipelineConfig cfg = differentialCfg();
    cfg.programs = 200;
    expectScreenDifferentialHolds(cfg);
}

TEST(TriageFaultCampaign, ScreenDifferentialHoldsUnderFaultPlan)
{
    // Nightly runs this under SCAMV_FAULT_PLAN=all: injected faults
    // may quarantine boring programs in the unscreened run, but never
    // give them an experiment — the verdict set still matches.
    PipelineConfig cfg = differentialCfg();
    cfg.programs = 40;
    // Honour the nightly's SCAMV_FAULT_RATE/SCAMV_FAULT_PLAN when
    // set; arm an all-sites plan ourselves otherwise.
    if (!core::resolveCampaignEnv(cfg).faultPlan.enabled()) {
        cfg.faultPlan.rate = 0.2;
        cfg.faultPlan.mask = faults::FaultPlan::maskAll();
    }
    expectScreenDifferentialHolds(cfg);
}

TEST(ScreenCampaign, AdaptiveScheduleGatesCoverageDraws)
{
    // Stride programs touch few classes; under the adaptive schedule
    // with the screen on, draws for unreachable classes are skipped
    // (counted) and campaign results remain deterministic.
    PipelineConfig cfg = strideCfg();
    cfg.schedule = core::Schedule::Adaptive;
    cfg.triageScreen = 1;
    const RunStats a = core::Pipeline(cfg).run();
    const RunStats b = core::Pipeline(cfg).run();
    EXPECT_EQ(a.metrics, b.metrics);
    EXPECT_GT(a.experiments, 0);
}

} // namespace
} // namespace scamv::triage
