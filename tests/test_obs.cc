/** @file Unit tests for the observational models and layout. */

#include <gtest/gtest.h>

#include "bir/asm.hh"
#include "bir/transform.hh"
#include "expr/eval.hh"
#include "obs/models.hh"
#include "sym/symexec.hh"

namespace scamv::obs {
namespace {

using expr::ExprContext;
using sym::ObsTag;

bir::Program
prog(const char *src)
{
    auto r = bir::assemble(src);
    EXPECT_TRUE(r.ok()) << r.error;
    return r.program;
}

TEST(Layout, CacheGeometryDefaultsMatchCortexA53)
{
    CacheGeometry g;
    EXPECT_EQ(g.lineBytes, 64u);
    EXPECT_EQ(g.numSets, 128u);
    EXPECT_EQ(g.ways, 4u);
    EXPECT_EQ(g.lineShift(), 6);
    // 32 KiB total.
    EXPECT_EQ(g.lineBytes * g.numSets * g.ways, 32u * 1024u);
}

TEST(Layout, SetAndTagExtraction)
{
    CacheGeometry g;
    EXPECT_EQ(g.setOf(0), 0u);
    EXPECT_EQ(g.setOf(64), 1u);
    EXPECT_EQ(g.setOf(64 * 127), 127u);
    EXPECT_EQ(g.setOf(64 * 128), 0u); // wraps
    EXPECT_NE(g.tagOf(0), g.tagOf(64 * 128));
}

TEST(Layout, SetExprMatchesConcrete)
{
    CacheGeometry g;
    ExprContext ctx;
    expr::Assignment a;
    for (std::uint64_t addr : {0ULL, 64ULL, 4096ULL, 0x87654ULL}) {
        a.bvVars["x"] = addr;
        EXPECT_EQ(expr::evalBv(g.setExpr(ctx, ctx.bvVar("x")), a),
                  g.setOf(addr))
            << addr;
    }
}

TEST(Layout, MemoryRegionMembership)
{
    MemoryRegion r;
    EXPECT_FALSE(r.contains(r.base - 1));
    EXPECT_TRUE(r.contains(r.base));
    EXPECT_TRUE(r.contains(r.limit() - 1));
    EXPECT_FALSE(r.contains(r.limit()));
}

TEST(Layout, RegionExprRequiresAlignment)
{
    MemoryRegion r;
    ExprContext ctx;
    expr::Assignment a;
    a.bvVars["x"] = r.base + 8;
    EXPECT_TRUE(expr::evalBool(r.containsExpr(ctx, ctx.bvVar("x")), a));
    a.bvVars["x"] = r.base + 4; // misaligned
    EXPECT_FALSE(expr::evalBool(r.containsExpr(ctx, ctx.bvVar("x")), a));
    a.bvVars["x"] = r.limit(); // out of range
    EXPECT_FALSE(expr::evalBool(r.containsExpr(ctx, ctx.bvVar("x")), a));
}

TEST(Layout, AttackerRegionConcreteAndSymbolicAgree)
{
    AttackerRegion ar; // sets 61..127
    ExprContext ctx;
    expr::Assignment a;
    for (std::uint64_t set : {0ULL, 60ULL, 61ULL, 127ULL}) {
        const std::uint64_t addr = 0x80000 + set * 64;
        a.bvVars["x"] = addr;
        EXPECT_EQ(expr::evalBool(ar.containsExpr(ctx, ctx.bvVar("x")), a),
                  ar.contains(addr))
            << set;
    }
    EXPECT_FALSE(ar.contains(0x80000 + 60 * 64));
    EXPECT_TRUE(ar.contains(0x80000 + 61 * 64));
}

TEST(Models, NamesMatchPaper)
{
    EXPECT_STREQ(modelName(ModelKind::Mpc), "Mpc");
    EXPECT_STREQ(modelName(ModelKind::MpartRefined), "Mpart'");
    EXPECT_STREQ(modelName(ModelKind::Mspec1), "Mspec1");
    EXPECT_EQ(makeModel(ModelKind::Mct)->name(), "Mct");
    EXPECT_EQ(makeModel(ModelKind::MpartRefined)->name(), "Mpart'");
}

TEST(Models, MpcObservesOnlyPc)
{
    ExprContext ctx;
    auto m = makeModel(ModelKind::Mpc);
    auto paths = sym::execute(ctx, prog("ldr x1, [x0]\nret\n"), *m,
                              {"_1"});
    ASSERT_EQ(paths.size(), 1u);
    ASSERT_EQ(paths[0].obs.size(), 2u); // one per instruction
    for (const auto &o : paths[0].obs) {
        EXPECT_EQ(o.tag, ObsTag::Base);
        EXPECT_TRUE(o.value->isConst());
    }
}

TEST(Models, MctObservesPcAndAddresses)
{
    ExprContext ctx;
    auto m = makeModel(ModelKind::Mct);
    auto paths = sym::execute(ctx, prog("ldr x1, [x0]\nret\n"), *m,
                              {"_1"});
    ASSERT_EQ(paths[0].obs.size(), 3u); // pc, addr, pc
    EXPECT_EQ(paths[0].obs[1].value, ctx.bvVar("x0_1"));
}

TEST(Models, MlineObservesSetIndexBits)
{
    ExprContext ctx;
    ModelParams params;
    auto m = makeModel(ModelKind::Mline, params);
    auto paths = sym::execute(ctx, prog("ldr x1, [x0]\nret\n"), *m,
                              {"_1"});
    ASSERT_EQ(paths[0].obs.size(), 3u);
    // The line observation is (x0 >> 6) & 127, not the full address.
    expr::Assignment a;
    a.bvVars["x0_1"] = 0x80000 + 70 * 64 + 8;
    EXPECT_EQ(expr::evalBv(paths[0].obs[1].value, a), 70u);
}

TEST(Models, MpartHidesAddressesOutsideAr)
{
    ExprContext ctx;
    ModelParams params; // AR = sets 61..127
    auto m = makeModel(ModelKind::Mpart, params);
    auto paths = sym::execute(ctx, prog("ldr x1, [x0]\nret\n"), *m,
                              {"_1"});
    ASSERT_EQ(paths[0].obs.size(), 3u);
    expr::Assignment a;
    // Outside AR: sentinel 0.
    a.bvVars["x0_1"] = 0x80000 + 10 * 64;
    EXPECT_EQ(expr::evalBv(paths[0].obs[1].value, a), 0u);
    // Inside AR: the address itself.
    a.bvVars["x0_1"] = 0x80000 + 100 * 64;
    EXPECT_EQ(expr::evalBv(paths[0].obs[1].value, a), a.bv("x0_1"));
}

TEST(Models, MpartRefinedAddsUnconditionalAddress)
{
    ExprContext ctx;
    ModelParams params;
    auto m = makeModel(ModelKind::MpartRefined, params);
    auto paths = sym::execute(ctx, prog("ldr x1, [x0]\nret\n"), *m,
                              {"_1"});
    ASSERT_EQ(paths[0].obs.size(), 4u); // pc, ar-addr, any-line, pc
    EXPECT_EQ(paths[0].obs[2].value,
              ctx.lshr(ctx.bvVar("x0_1"), ctx.bv(6)));
}

TEST(Models, RefinementPairTagsExclusiveObservations)
{
    ExprContext ctx;
    ModelParams params;
    RefinementPair pair(makeModel(ModelKind::Mpart, params),
                        makeModel(ModelKind::MpartRefined, params));
    auto paths = sym::execute(ctx, prog("ldr x1, [x0]\nret\n"), pair,
                              {"_1"});
    auto base = paths[0].project(ObsTag::Base);
    auto refined = paths[0].project(ObsTag::RefinedOnly);
    EXPECT_EQ(base.size(), 3u);
    ASSERT_EQ(refined.size(), 1u);
    EXPECT_EQ(refined[0].value,
              ctx.lshr(ctx.bvVar("x0_1"), ctx.bv(6)));
}

TEST(Models, RefinementPairMctVsMspecOnInstrumentedProgram)
{
    ExprContext ctx;
    bir::Program p = bir::instrumentSpeculation(
        prog("b.ne x1, x4, end\nldr x6, [x5, x2]\nend: ret\n"));
    RefinementPair pair(makeModel(ModelKind::Mct),
                        makeModel(ModelKind::Mspec));
    auto paths = sym::execute(ctx, p, pair, {"_1"});
    for (const auto &path : paths) {
        auto refined = path.project(ObsTag::RefinedOnly);
        if (path.decisions[0])
            EXPECT_EQ(refined.size(), 1u); // shadow body load
        else
            EXPECT_TRUE(refined.empty());
    }
}

TEST(Models, Mspec1ObservesOnlyFirstTransientLoad)
{
    ExprContext ctx;
    bir::Program p = bir::instrumentSpeculation(
        prog("b.ne x1, x4, end\n"
             "ldr x6, [x5, x3]\n"
             "ldr x8, [x7, x2]\n" // independent second load
             "end: ret\n"));
    RefinementPair pair(makeModel(ModelKind::Mspec1),
                        makeModel(ModelKind::Mspec));
    auto paths = sym::execute(ctx, p, pair, {"_1"});
    for (const auto &path : paths) {
        if (!path.decisions[0])
            continue;
        // Base (Mspec1) sees the first transient load; RefinedOnly
        // (Mspec-exclusive) is the second one.
        auto refined = path.project(ObsTag::RefinedOnly);
        ASSERT_EQ(refined.size(), 1u);
        EXPECT_EQ(refined[0].value,
                  ctx.lshr(ctx.add(ctx.bvVar("x7_1"),
                                   ctx.bvVar("x2_1")),
                           ctx.bv(6)));
    }
}

} // namespace
} // namespace scamv::obs
